//! Monte-Carlo inter-chip process variation (Fig. 5.4's methodology).
//!
//! "We have assumed that the desynchronized real average case is a normal
//! distribution between the two extreme cases, exactly like SSTA does for
//! variability factors" (§5.2.2). Each fabricated chip draws a process
//! point `t ∈ [0, 1]` (0 = best corner, 1 = worst) from a clamped
//! Gaussian; the delay elements track the same silicon as the logic they
//! match, so a desynchronized chip runs at its own `t` while a synchronous
//! design must be clocked for `t = 1`.

use drd_liberty::Corner;

/// SplitMix64 step: the sim crate keeps its own inlined generator (it
/// cannot depend on `drd-check`, which depends on this crate) so the
/// workspace stays free of registry dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// One standard-normal draw from a freshly keyed stream: the stream is a
/// pure function of `key`, never of any caller iteration order.
fn gauss(key: u64) -> f64 {
    // Pre-whiten the key through one splitmix step so structured keys
    // (small chip/gate indices) land on uncorrelated streams.
    let mut whiten = key;
    let mut state = splitmix64(&mut whiten);
    let u1 = uniform(&mut state).max(1e-12);
    let u2 = uniform(&mut state);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Intra-die spread as a fraction of the inter-chip `sigma`: within one
/// die, neighbouring gates track each other far more closely than two
/// dies track each other (the SSTA assumption behind §5.2.2's normal
/// model).
const INTRA_DIE_FRACTION: f64 = 0.25;

/// Order-independent per-gate delay draws, keyed by
/// `(campaign_seed, chip_index, gate_index)`.
///
/// [`ChipPopulation`] draws its process points from one sequential
/// stream, so a caller that visits chips in a different order (or skips
/// some) gets different silicon. This derivation instead hashes the full
/// coordinate into a fresh SplitMix64 stream per draw: any iteration
/// order — and any parallel schedule — sees the same chips and the same
/// gates.
///
/// Factors are normalized to the typical chip: `factor` divides the
/// interpolated corner derating by the `t = 0.5` derating, so a
/// zero-sigma campaign yields *exactly* `1.0` for every gate and a
/// Monte-Carlo run at `sigma = 0` reproduces the nominal simulation
/// bit for bit (the property `crates/check` tests).
#[derive(Debug, Clone, Copy)]
pub struct GateVariability {
    campaign_seed: u64,
    sigma: f64,
}

impl GateVariability {
    /// A campaign: `sigma` is the inter-chip process spread of the
    /// clamped-Gaussian process point `t ~ N(0.5, sigma)`.
    pub fn new(campaign_seed: u64, sigma: f64) -> GateVariability {
        GateVariability { campaign_seed, sigma }
    }

    /// The campaign seed.
    pub fn campaign_seed(&self) -> u64 {
        self.campaign_seed
    }

    /// The inter-chip sigma.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    fn key(&self, chip_index: u64, gate_index: u64) -> u64 {
        // Distinct odd multipliers keep the two coordinates from
        // aliasing (chip 1/gate 0 vs chip 0/gate 1).
        self.campaign_seed
            ^ chip_index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ gate_index.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
    }

    /// Chip `chip_index`'s process point `t ∈ [0, 1]` — a function of
    /// `(campaign_seed, chip_index)` only.
    pub fn chip_point(&self, chip_index: u64) -> f64 {
        let z = gauss(self.key(chip_index, u64::MAX));
        (0.5 + z * self.sigma).clamp(0.0, 1.0)
    }

    /// Gate `gate_index`'s process point on chip `chip_index`: the chip
    /// point plus a smaller intra-die deviation, clamped to `[0, 1]`.
    pub fn gate_point(&self, chip_index: u64, gate_index: u64) -> f64 {
        let z = gauss(self.key(chip_index, gate_index));
        (self.chip_point(chip_index) + z * self.sigma * INTRA_DIE_FRACTION).clamp(0.0, 1.0)
    }

    /// The typical-normalized delay factor of one gate on one chip:
    /// exactly `1.0` when `sigma == 0`.
    pub fn factor(&self, chip_index: u64, gate_index: u64) -> f64 {
        let typical = Corner::interpolate(0.5).delay_factor;
        Corner::interpolate(self.gate_point(chip_index, gate_index)).delay_factor / typical
    }

    /// The typical-normalized worst-corner factor — what a synchronous
    /// design must be clocked for regardless of its own silicon.
    pub fn worst_corner_factor() -> f64 {
        Corner::worst().delay_factor / Corner::interpolate(0.5).delay_factor
    }
}

/// A population of fabricated chips with per-chip process points.
#[derive(Debug, Clone)]
pub struct ChipPopulation {
    points: Vec<f64>,
}

impl ChipPopulation {
    /// Samples `n` chips: `t ~ N(0.5, sigma)` clamped to `[0, 1]`.
    pub fn sample(n: usize, sigma: f64, seed: u64) -> ChipPopulation {
        let mut state = seed;
        let points = (0..n)
            .map(|_| {
                // Box–Muller on two uniforms from the seeded RNG.
                let u1 = uniform(&mut state).max(1e-12);
                let u2 = uniform(&mut state);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (0.5 + z * sigma).clamp(0.0, 1.0)
            })
            .collect();
        ChipPopulation { points }
    }

    /// Per-chip process points.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// The operating corner of chip `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn corner(&self, i: usize) -> Corner {
        Corner::interpolate(self.points[i])
    }

    /// Number of chips.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Fraction of chips whose value under `f` is below `threshold` —
    /// e.g. the fraction of desynchronized chips faster than the
    /// synchronous worst-case period (the shaded ~90 % area of Fig. 5.4).
    pub fn fraction_below(&self, threshold: f64, mut f: impl FnMut(Corner) -> f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let below = self
            .points
            .iter()
            .filter(|&&t| f(Corner::interpolate(t)) < threshold)
            .count();
        below as f64 / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic_and_centered() {
        let a = ChipPopulation::sample(2000, 0.15, 1);
        let b = ChipPopulation::sample(2000, 0.15, 1);
        assert_eq!(a.points(), b.points());
        assert_eq!(a.len(), 2000);
        assert!(!a.is_empty());
        let mean: f64 = a.points().iter().sum::<f64>() / a.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(a.points().iter().all(|&t| (0.0..=1.0).contains(&t)));
    }

    #[test]
    fn fraction_below_tracks_distribution() {
        let pop = ChipPopulation::sample(4000, 0.15, 7);
        // Delay grows with t; the threshold at the worst corner's delay
        // should be nearly always met.
        let worst_delay = Corner::worst().delay(1.0);
        let frac = pop.fraction_below(worst_delay, |c| c.delay(1.0));
        assert!(frac > 0.95, "{frac}");
        // The threshold at the typical point splits the population.
        let mid = Corner::interpolate(0.5).delay(1.0);
        let frac_mid = pop.fraction_below(mid, |c| c.delay(1.0));
        assert!((0.35..0.65).contains(&frac_mid), "{frac_mid}");
    }

    #[test]
    fn corner_accessor() {
        let pop = ChipPopulation::sample(3, 0.1, 2);
        let c = pop.corner(0);
        assert!(c.delay_factor >= Corner::best().delay_factor);
        assert!(c.delay_factor <= Corner::worst().delay_factor);
    }

    #[test]
    fn gate_draws_are_order_independent() {
        let var = GateVariability::new(0xC0FFEE, 0.15);
        // Visit (chip, gate) coordinates in two very different orders;
        // the draws are keyed, not streamed, so each coordinate's value
        // is identical either way.
        let mut forward = Vec::new();
        for chip in 0..16u64 {
            for gate in 0..16u64 {
                forward.push((chip, gate, var.factor(chip, gate)));
            }
        }
        for &(chip, gate, f) in forward.iter().rev() {
            assert_eq!(f.to_bits(), var.factor(chip, gate).to_bits());
        }
        // Skipping chips must not shift later chips' silicon.
        assert_eq!(
            var.factor(11, 3).to_bits(),
            GateVariability::new(0xC0FFEE, 0.15).factor(11, 3).to_bits()
        );
    }

    #[test]
    fn zero_sigma_factors_are_exactly_one() {
        let var = GateVariability::new(7, 0.0);
        for chip in 0..8u64 {
            for gate in 0..8u64 {
                assert_eq!(var.factor(chip, gate), 1.0);
            }
        }
    }

    #[test]
    fn gate_factors_track_the_chip_point() {
        let var = GateVariability::new(42, 0.2);
        for chip in 0..32u64 {
            let t = var.chip_point(chip);
            assert!((0.0..=1.0).contains(&t));
            // Intra-die spread is a fraction of the chip spread: gate
            // points stay near the chip point.
            let mean: f64 =
                (0..64u64).map(|g| var.gate_point(chip, g)).sum::<f64>() / 64.0;
            assert!((mean - t).abs() < 0.1, "chip {chip}: {mean} vs {t}");
        }
        // Factors span the corner range and stay positive.
        let worst = GateVariability::worst_corner_factor();
        for chip in 0..32u64 {
            let f = var.factor(chip, 0);
            assert!(f > 0.0 && f <= worst + 1e-9, "{f}");
        }
    }

    #[test]
    fn distinct_coordinates_get_distinct_draws() {
        let var = GateVariability::new(1, 0.15);
        // (chip 1, gate 0) and (chip 0, gate 1) must not alias.
        assert_ne!(var.factor(1, 0).to_bits(), var.factor(0, 1).to_bits());
        assert_ne!(var.factor(0, 0).to_bits(), var.factor(0, 1).to_bits());
        assert_ne!(var.factor(0, 0).to_bits(), var.factor(1, 0).to_bits());
    }
}
