//! Handshake-level timing simulation of the desynchronized control
//! network (§2.4, §5.2.2).
//!
//! The gate-level [`crate::Simulator`] answers "is the desynchronized
//! circuit flow-equivalent?"; this module answers "how fast does it
//! run, on *this* chip's silicon?". It elaborates the control network —
//! two semi-decoupled controllers per region (the seven-gate
//! implementation of `drd_core::controller`), the balanced C-element
//! join trees over predecessor requests and successor acknowledges
//! (`drd_core::celement::join`'s shape), and the asymmetric matched
//! delay elements — into a timed event graph, races req/ack transitions
//! through the deterministic [`crate::events::EventQueue`], and measures
//! the effective cycle time of every region from its slave latch-enable
//! (`gs`) rising edges, exactly like the Fig. 5.3 measurement harness
//! does on the full netlist.
//!
//! Determinism rules (DESIGN.md §3f):
//! * all times are integer femtoseconds; every gate delay is rounded to
//!   fs once, up front;
//! * events pop in `(time, event-id)` order and ids are assigned in
//!   scheduling order, which is itself deterministic;
//! * per-gate process variation comes from the *keyed* draws of
//!   [`GateVariability`] — a pure function of `(campaign_seed, chip,
//!   gate)` — so a Monte-Carlo campaign is one independent task per chip
//!   and merges in chip order with byte-identical results for any worker
//!   count.
//!
//! The elaboration consumes a [`HandshakeSpec`] (region summaries plus
//! data-dependency edges) rather than the netlist itself: the spec is a
//! faithful projection of `drd_core`'s `DesyncReport`, and keeping this
//! crate below `drd-core` in the dependency order lets the core flow
//! keep using `drd-sim` in its own tests.
//!
//! Faithfulness includes the construction's deadlocks. The matched
//! delay swallows any request pulse shorter than its chain (each AND
//! stage is fed by the input), so a *source* region — whose loopback
//! request environment withdraws the request as soon as a successor
//! acknowledges — wedges when its matched delay exceeds the successor's
//! response time; interior regions are immune because C-element joins
//! hold their requests until the full chain is traversed. The
//! simulation reproduces both behaviours at gate-level fidelity
//! (`drd-check`'s `handshake_stall` test pins the equivalence).

use drd_liberty::Library;

use crate::events::{fs_to_ns, ns_to_fs, EventQueue, TimeFs};
use crate::variability::GateVariability;
use crate::SimError;

/// Rising `gs` edges collected per region before a run stops.
pub const DEFAULT_MAX_EDGES: usize = 12;

/// Hard cap on processed events per run — a livelocked graph (which a
/// correct elaboration cannot produce) errors instead of spinning.
const MAX_EVENTS: u64 = 8_000_000;

/// One region of a [`HandshakeSpec`] — a projection of the flow's
/// per-region report row.
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// Region name (`g0` = input registers).
    pub name: String,
    /// True when the region got controllers and a matched delay
    /// (substituted flip-flops, not degraded).
    pub controlled: bool,
    /// Matched-delay element depth in delay levels.
    pub matched_levels: usize,
    /// Region critical path through the combinational cloud (ns).
    pub critical_delay_ns: f64,
    /// True when the flow's liveness guard inserted a request-extending
    /// latch on this region's loopback: the request is held by a
    /// C-element until the master controller acknowledges, so the
    /// asymmetric delay element can never swallow it. Only meaningful
    /// for source regions (no controlled predecessors).
    pub loopback_latch: bool,
}

/// The control-network shape the simulator elaborates.
#[derive(Debug, Clone)]
pub struct HandshakeSpec {
    /// Regions in flow order.
    pub regions: Vec<RegionSpec>,
    /// Data-dependency edges as `(pred, succ)` region indices.
    pub edges: Vec<(usize, usize)>,
    /// Per-level delay of the matched-delay chain (ns) — the flow's
    /// `delay_element::level_delay_ns` probe.
    pub level_delay_ns: f64,
    /// Flip-flop overhead (clk→Q plus setup, ns) of the synchronous
    /// comparison model.
    pub ff_overhead_ns: f64,
}

/// Per-region measurement from one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionCycle {
    /// Region name.
    pub region: String,
    /// Effective cycle time (ns) over the measured steady-state window.
    pub cycle_ns: f64,
    /// Steady-state window: `span_fs` femtoseconds over `cycles` full
    /// cycles (exact integers, for bit-stable oracles).
    pub span_fs: TimeFs,
    /// Cycles in the window.
    pub cycles: usize,
    /// The STA matched-delay floor (ns): the delay element's nominal
    /// rise delay. Any simulated cycle must be at least this long.
    pub matched_delay_ns: f64,
}

/// One Monte-Carlo chip: the desynchronized chip runs at its own
/// silicon's handshake speed; the synchronous model's period is its
/// slowest register-to-register path on the same silicon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSample {
    /// Chip index (also the variability coordinate).
    pub chip: usize,
    /// Slowest region's simulated handshake cycle time (ns).
    pub desync_cycle_ns: f64,
    /// Synchronous critical-path period on the same drawn silicon (ns).
    pub sync_period_ns: f64,
}

#[derive(Debug, Clone, Copy)]
enum NodeKind {
    /// INVX1.
    Inv(usize),
    /// BUFX1 / BUFX2 (enable and acknowledge buffering).
    Buf(usize),
    /// AND2X1 — the controller's `g` pulse shaper.
    And2(usize, usize),
    /// A Muller C-element. `reset` is the value held while the handshake
    /// reset is asserted: `Some(false)` for C2RX1, `Some(true)` for
    /// C2SX1, `None` for the join-tree C2X1 (no reset pin — it settles
    /// from its inputs).
    C2 {
        a: usize,
        b: usize,
        reset: Option<bool>,
    },
    /// Asymmetric matched delay: slow rise (the full chain), fast fall
    /// (one level — the AND chain's fast-fall shortcut).
    Delay(usize),
}

/// Unwired input sentinel during elaboration; never survives it.
const PENDING: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    /// Nominal delay of each constituent variability gate (fs). Simple
    /// gates have one; a matched delay has `matched_levels`.
    levels: Vec<TimeFs>,
    /// First variability-gate index; the node spans
    /// `gate_base..gate_base + levels.len()`.
    gate_base: usize,
}

/// Handles into the node table for one controlled region's two
/// controllers (`m_` master, `s_` slave) and matched delay.
#[derive(Debug, Clone, Copy)]
struct RegionNodes {
    region: usize,
    m_nro: usize,
    m_a: usize,
    m_nao: usize,
    m_ro: usize,
    m_g1: usize,
    /// Master latch-enable buffer; elaborated for delay fidelity, only
    /// the slave enable is watched for cycle measurement.
    _m_g: usize,
    m_ai: usize,
    s_nro: usize,
    s_a: usize,
    s_nao: usize,
    s_ro: usize,
    s_g1: usize,
    s_g: usize,
    s_ai: usize,
    delay: usize,
}

/// The elaborated timed event graph plus the synchronous comparison
/// model, ready to simulate at any drawn silicon.
#[derive(Debug, Clone)]
pub struct HandshakeNet {
    nodes: Vec<Node>,
    fanout: Vec<Vec<usize>>,
    regions: Vec<RegionNodes>,
    region_names: Vec<String>,
    /// Nominal matched-delay floor per controlled region (fs).
    matched_fs: Vec<TimeFs>,
    /// Synchronous critical paths: per path, the nominal fs of each
    /// variability gate on it (cloud stages plus one FF-overhead gate).
    sync_paths: Vec<Vec<TimeFs>>,
    gate_count: usize,
}

/// Library intrinsic delay of `cell` (ns).
fn cell_delay_ns(lib: &Library, cell: &str) -> Result<f64, SimError> {
    lib.cell(cell)
        .map(|c| c.max_intrinsic_delay())
        .ok_or_else(|| SimError::UnknownCell { name: cell.to_owned() })
}

impl HandshakeNet {
    /// Elaborates the control network of `spec` into a timed event
    /// graph, mirroring `drd_core::network::build_control_network`:
    /// per controlled region a master/slave controller pair, a balanced
    /// C-element join over controlled predecessors' requests (loopback
    /// when none), a matched delay on the joined request, and a balanced
    /// join over controlled successors' acknowledges (eager own-request
    /// acknowledge when none).
    ///
    /// # Errors
    /// [`SimError::UnknownCell`] when the library misses a controller
    /// gate; [`SimError::Handshake`] when no region is controlled.
    pub fn elaborate(spec: &HandshakeSpec, lib: &Library) -> Result<HandshakeNet, SimError> {
        let inv = ns_to_fs(cell_delay_ns(lib, "INVX1")?);
        let buf1 = ns_to_fs(cell_delay_ns(lib, "BUFX1")?);
        let buf2 = ns_to_fs(cell_delay_ns(lib, "BUFX2")?);
        let and2 = ns_to_fs(cell_delay_ns(lib, "AND2X1")?);
        let c2r = ns_to_fs(cell_delay_ns(lib, "C2RX1")?);
        let c2s = ns_to_fs(cell_delay_ns(lib, "C2SX1")?);
        let c2 = ns_to_fs(cell_delay_ns(lib, "C2X1")?);
        let level = ns_to_fs(spec.level_delay_ns);

        let controlled: Vec<usize> = spec
            .regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.controlled)
            .map(|(i, _)| i)
            .collect();
        if controlled.is_empty() {
            return Err(SimError::Handshake {
                message: "no controlled regions to elaborate".into(),
            });
        }

        let mut nodes: Vec<Node> = Vec::new();
        let mut gate_count = 0usize;
        let mut push = |nodes: &mut Vec<Node>, kind: NodeKind, levels: Vec<TimeFs>| {
            let gate_base = gate_count;
            gate_count += levels.len();
            nodes.push(Node { kind, levels, gate_base });
            nodes.len() - 1
        };

        // Pass 1: allocate every controller in region order with
        // intra-region wiring; cross-region inputs stay PENDING.
        let mut handles: Vec<RegionNodes> = Vec::new();
        let mut ext_handles: Vec<Option<(usize, usize)>> = Vec::new();
        let mut matched_fs = Vec::new();
        let mut region_names = Vec::new();
        for &ri in &controlled {
            let r = &spec.regions[ri];
            let base = nodes.len();
            // Fixed per-region layout (offsets 0..=14) — see RegionNodes.
            let h = RegionNodes {
                region: ri,
                m_nro: base,
                m_a: base + 1,
                m_nao: base + 2,
                m_ro: base + 3,
                m_g1: base + 4,
                _m_g: base + 5,
                m_ai: base + 6,
                s_nro: base + 7,
                s_a: base + 8,
                s_nao: base + 9,
                s_ro: base + 10,
                s_g1: base + 11,
                s_g: base + 12,
                s_ai: base + 13,
                delay: base + 14,
            };
            let levels = r.matched_levels.max(1);
            push(&mut nodes, NodeKind::Inv(h.m_ro), vec![inv]);
            push(&mut nodes, NodeKind::C2 { a: h.delay, b: h.m_nro, reset: Some(false) }, vec![c2r]);
            push(&mut nodes, NodeKind::Inv(h.s_ai), vec![inv]);
            push(&mut nodes, NodeKind::C2 { a: h.m_a, b: h.m_nao, reset: Some(false) }, vec![c2r]);
            push(&mut nodes, NodeKind::And2(h.m_a, h.m_nro), vec![and2]);
            push(&mut nodes, NodeKind::Buf(h.m_g1), vec![buf2]);
            push(&mut nodes, NodeKind::Buf(h.m_a), vec![buf1]);
            push(&mut nodes, NodeKind::Inv(h.s_ro), vec![inv]);
            push(&mut nodes, NodeKind::C2 { a: h.m_ro, b: h.s_nro, reset: Some(false) }, vec![c2r]);
            push(&mut nodes, NodeKind::Inv(PENDING), vec![inv]); // s_nao: ack join, pass 2
            push(&mut nodes, NodeKind::C2 { a: h.s_a, b: h.s_nao, reset: Some(true) }, vec![c2s]);
            push(&mut nodes, NodeKind::And2(h.s_a, h.s_nro), vec![and2]);
            push(&mut nodes, NodeKind::Buf(h.s_g1), vec![buf2]);
            push(&mut nodes, NodeKind::Buf(h.s_a), vec![buf1]);
            push(&mut nodes, NodeKind::Delay(PENDING), vec![level; levels]); // req join, pass 2
            // Request-extending latch (liveness repair, DESIGN.md §3i):
            // an inverter on the master acknowledge plus a C-element that
            // holds the raw request high until the ack arrives. Allocated
            // here in region order; wired in pass 2.
            let ext = if r.loopback_latch {
                let e_inv = push(&mut nodes, NodeKind::Inv(PENDING), vec![inv]);
                let e_c2 =
                    push(&mut nodes, NodeKind::C2 { a: PENDING, b: e_inv, reset: None }, vec![c2]);
                Some((e_inv, e_c2))
            } else {
                None
            };
            ext_handles.push(ext);
            matched_fs.push(level.saturating_mul(levels as TimeFs));
            region_names.push(r.name.clone());
            handles.push(h);
        }

        // Balanced pairwise reduction with the same chunks-of-2 shape as
        // `drd_core::celement::join` — the odd element passes up a round.
        let mut join = |nodes: &mut Vec<Node>, inputs: &[usize]| -> usize {
            let mut layer: Vec<usize> = inputs.to_vec();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    if let [a, b] = *pair {
                        next.push(push(nodes, NodeKind::C2 { a, b, reset: None }, vec![c2]));
                    } else {
                        next.push(pair[0]);
                    }
                }
                layer = next;
            }
            layer[0]
        };

        // Pass 2: join trees and cross-region wiring, in region order.
        let slot_of = |region: usize| controlled.iter().position(|&r| r == region);
        for (slot, h) in handles.clone().into_iter().enumerate() {
            let preds: Vec<usize> = spec
                .edges
                .iter()
                .filter(|&&(_, s)| s == h.region)
                .filter_map(|&(p, _)| slot_of(p))
                .collect();
            let succs: Vec<usize> = spec
                .edges
                .iter()
                .filter(|&&(p, _)| p == h.region)
                .filter_map(|&(_, s)| slot_of(s))
                .collect();

            // Request side: join controlled predecessors' `ros`, or loop
            // the region's own request back when it has none.
            let mut raw_req = if preds.is_empty() {
                handles[slot].s_ro
            } else {
                let inputs: Vec<usize> = preds.iter().map(|&p| handles[p].s_ro).collect();
                join(&mut nodes, &inputs)
            };
            // Liveness repair: interpose the request-extending latch. At
            // reset both inputs are high (slave request set, master ack
            // low), so the no-reset C-element settles to the same value
            // the bare loopback wire has.
            if let Some((e_inv, e_c2)) = ext_handles[slot] {
                nodes[e_inv].kind = NodeKind::Inv(handles[slot].m_ai);
                if let NodeKind::C2 { a, .. } = &mut nodes[e_c2].kind {
                    *a = raw_req;
                }
                raw_req = e_c2;
            }
            nodes[h.delay].kind = NodeKind::Delay(raw_req);

            // Acknowledge side: join controlled successors' `aim`, or
            // acknowledge eagerly from the region's own request.
            let slave_ao = if succs.is_empty() {
                handles[slot].s_ro
            } else {
                let inputs: Vec<usize> = succs.iter().map(|&s| handles[s].m_ai).collect();
                join(&mut nodes, &inputs)
            };
            nodes[h.s_nao].kind = NodeKind::Inv(slave_ao);
        }

        debug_assert!(nodes.iter().all(|n| match n.kind {
            NodeKind::Inv(a) | NodeKind::Buf(a) | NodeKind::Delay(a) => a != PENDING,
            NodeKind::And2(a, b) | NodeKind::C2 { a, b, .. } => a != PENDING && b != PENDING,
        }));

        let mut fanout = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            match n.kind {
                NodeKind::Inv(a) | NodeKind::Buf(a) | NodeKind::Delay(a) => fanout[a].push(i),
                NodeKind::And2(a, b) | NodeKind::C2 { a, b, .. } => {
                    fanout[a].push(i);
                    if b != a {
                        fanout[b].push(i);
                    }
                }
            }
        }

        // Synchronous comparison model: each region with a combinational
        // cloud contributes one register-to-register path, decomposed
        // into level-sized gates so intra-die draws average the same way
        // they do along the matched delay chains.
        let mut sync_paths = Vec::new();
        for r in &spec.regions {
            if r.critical_delay_ns <= 0.0 {
                continue;
            }
            let depth = (r.critical_delay_ns / spec.level_delay_ns.max(1e-9)).ceil().max(1.0);
            let per_gate = ns_to_fs(r.critical_delay_ns / depth);
            let mut path = vec![per_gate; depth as usize];
            path.push(ns_to_fs(spec.ff_overhead_ns));
            let gate_base = gate_count;
            gate_count += path.len();
            // Record the path's gate span via a synthetic node-free
            // entry: sync paths are summed, never event-simulated.
            sync_paths.push((gate_base, path));
        }
        let sync_paths = sync_paths
            .into_iter()
            .map(|(base, path)| {
                // Stash the base in the vector by construction: gate
                // index of element j is base + j. Recover it in
                // `sync_period_fs` from the running offset.
                debug_assert!(base < gate_count);
                path
            })
            .collect();

        Ok(HandshakeNet {
            nodes,
            fanout,
            regions: handles,
            region_names,
            matched_fs,
            sync_paths,
            gate_count,
        })
    }

    /// Total variability-gate coordinates: control-network gates first,
    /// then the synchronous comparison paths.
    pub fn gate_count(&self) -> usize {
        self.gate_count
    }

    /// Control-network gate count (the prefix of [`gate_count`]'s range
    /// that the event simulation consumes).
    pub fn control_gate_count(&self) -> usize {
        self.nodes.iter().map(|n| n.levels.len()).sum()
    }

    /// Controlled region names, in elaboration order.
    pub fn region_names(&self) -> &[String] {
        &self.region_names
    }

    /// Nominal matched-delay floor of controlled region `slot` (ns).
    pub fn matched_delay_ns(&self, slot: usize) -> f64 {
        fs_to_ns(self.matched_fs[slot])
    }

    /// Per-gate delay factors for `chip`, in gate-index order.
    pub fn chip_factors(&self, var: &GateVariability, chip: usize) -> Vec<f64> {
        (0..self.gate_count)
            .map(|g| var.factor(chip as u64, g as u64))
            .collect()
    }

    /// Simulates at unit factors: the nominal analytical model (the
    /// deterministic execution of the timed event graph at library
    /// delays). A zero-sigma Monte-Carlo chip reproduces this bit for
    /// bit.
    ///
    /// # Errors
    /// Propagates simulation errors (deadlock, unsettled reset).
    pub fn nominal_cycle_times(&self) -> Result<Vec<RegionCycle>, SimError> {
        let factors = vec![1.0; self.gate_count];
        self.cycle_times(&factors, DEFAULT_MAX_EDGES)
    }

    /// Simulates with per-gate `factors` (length [`gate_count`]) and
    /// measures each region's effective cycle time over the trailing
    /// half of `max_edges` slave-enable rising edges.
    ///
    /// # Errors
    /// [`SimError::Handshake`] on factor-length mismatch, handshake
    /// deadlock, unsettled reset, or event-cap overrun.
    pub fn cycle_times(
        &self,
        factors: &[f64],
        max_edges: usize,
    ) -> Result<Vec<RegionCycle>, SimError> {
        self.cycle_times_scaled(factors, 1.0, max_edges)
    }

    /// [`cycle_times`] with the matched-delay chains scaled by
    /// `matched_scale` — the Fig. 5.3 tap-selection sweep (selection `k`
    /// scales the matched delay by `tap_factor(k)`).
    ///
    /// # Errors
    /// As [`cycle_times`].
    pub fn cycle_times_scaled(
        &self,
        factors: &[f64],
        matched_scale: f64,
        max_edges: usize,
    ) -> Result<Vec<RegionCycle>, SimError> {
        if factors.len() < self.control_gate_count() {
            return Err(SimError::Handshake {
                message: format!(
                    "{} delay factors for {} control gates",
                    factors.len(),
                    self.control_gate_count()
                ),
            });
        }
        let max_edges = max_edges.max(4);

        // Per-node rise/fall delays (fs), rounded once up front.
        let scale_term = |nominal: TimeFs, f: f64| -> TimeFs {
            let fs = (nominal as f64 * f).round();
            if fs < 1.0 {
                1
            } else {
                fs as TimeFs
            }
        };
        let delays: Vec<(TimeFs, TimeFs)> = self
            .nodes
            .iter()
            .map(|n| {
                let scale = if matches!(n.kind, NodeKind::Delay(_)) { matched_scale } else { 1.0 };
                let terms: Vec<TimeFs> = n
                    .levels
                    .iter()
                    .enumerate()
                    .map(|(i, &lv)| scale_term(lv, factors[n.gate_base + i] * scale))
                    .collect();
                let rise: TimeFs = terms.iter().sum();
                // Matched delays fall fast (one level); everything else
                // is symmetric.
                let fall = if matches!(n.kind, NodeKind::Delay(_)) { terms[0] } else { rise };
                (rise.max(1), fall.max(1))
            })
            .collect();

        // Reset fixed point: C2R held 0, C2S held 1, the rest settles
        // combinationally (the DAG left after holding the loop-breaking
        // controller C-elements).
        let mut values = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let NodeKind::C2 { reset: Some(r), .. } = n.kind {
                values[i] = r;
            }
        }
        let mut settled = false;
        for _ in 0..self.nodes.len() + 2 {
            let mut changed = false;
            for i in 0..self.nodes.len() {
                if let NodeKind::C2 { reset: Some(_), .. } = self.nodes[i].kind {
                    continue; // held by reset
                }
                let v = self.eval(i, &values, values[i]);
                if v != values[i] {
                    values[i] = v;
                    changed = true;
                }
            }
            if !changed {
                settled = true;
                break;
            }
        }
        if !settled {
            return Err(SimError::Handshake {
                message: "reset state did not settle".into(),
            });
        }

        // Release reset at t = 0: every reset-held C-element re-evaluates
        // against its settled inputs.
        let mut next_values = values.clone();
        let mut versions = vec![0u32; self.nodes.len()];
        let mut queue = EventQueue::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if let NodeKind::C2 { reset: Some(_), .. } = n.kind {
                let v = self.eval(i, &values, values[i]);
                if v != values[i] {
                    next_values[i] = v;
                    versions[i] += 1;
                    let delay = if v { delays[i].0 } else { delays[i].1 };
                    queue.schedule(delay, i, v, versions[i]);
                }
            }
        }

        // Watch table: slave enable node → region slot.
        let mut watch = vec![usize::MAX; self.nodes.len()];
        for (slot, h) in self.regions.iter().enumerate() {
            watch[h.s_g] = slot;
        }
        let mut edges: Vec<Vec<TimeFs>> = vec![Vec::with_capacity(max_edges); self.regions.len()];
        let mut done = 0usize;

        let mut processed: u64 = 0;
        while let Some(ev) = queue.pop() {
            if ev.version != versions[ev.node] {
                continue; // superseded (inertial cancellation)
            }
            processed += 1;
            if processed > MAX_EVENTS {
                return Err(SimError::Handshake {
                    message: format!("event cap exceeded after {processed} events"),
                });
            }
            values[ev.node] = ev.value;
            let slot = watch[ev.node];
            if ev.value && slot != usize::MAX && edges[slot].len() < max_edges {
                edges[slot].push(ev.time);
                if edges[slot].len() == max_edges {
                    done += 1;
                    if done == self.regions.len() {
                        break;
                    }
                }
            }
            for &f in &self.fanout[ev.node] {
                let target = self.eval(f, &values, next_values[f]);
                if target != next_values[f] {
                    next_values[f] = target;
                    versions[f] += 1;
                    let delay = if target { delays[f].0 } else { delays[f].1 };
                    queue.schedule(ev.time + delay, f, target, versions[f]);
                }
            }
        }

        let warmup = max_edges / 2;
        let mut out = Vec::with_capacity(self.regions.len());
        for (slot, times) in edges.iter().enumerate() {
            if times.len() < warmup + 2 {
                return Err(SimError::Handshake {
                    message: format!(
                        "handshake deadlock: region {} produced {} enable edges (need {})",
                        self.region_names[slot],
                        times.len(),
                        warmup + 2
                    ),
                });
            }
            let span_fs = times[times.len() - 1] - times[warmup];
            let cycles = times.len() - 1 - warmup;
            out.push(RegionCycle {
                region: self.region_names[slot].clone(),
                cycle_ns: fs_to_ns(span_fs) / cycles as f64,
                span_fs,
                cycles,
                matched_delay_ns: fs_to_ns((self.matched_fs[slot] as f64 * matched_scale) as TimeFs),
            });
        }
        Ok(out)
    }

    fn eval(&self, i: usize, values: &[bool], hold: bool) -> bool {
        match self.nodes[i].kind {
            NodeKind::Inv(a) => !values[a],
            NodeKind::Buf(a) | NodeKind::Delay(a) => values[a],
            NodeKind::And2(a, b) => values[a] && values[b],
            NodeKind::C2 { a, b, .. } => {
                if values[a] == values[b] {
                    values[a]
                } else {
                    hold
                }
            }
        }
    }

    /// Closed-form steady-state period of a **single-region self-loop
    /// ring** (`edges = [(0, 0)]`, the one-region DDG): once the matched
    /// delay dominates the controller gates, every cycle is the same
    /// four-phase loop through the slave request —
    ///
    /// ```text
    /// ros+ →(Dr)   rim+  →(C2R) m_a+ →(BUF) m_ai+ →(INV) nao− →(C2S) ros−
    /// ros− →(lvl)  rim−  →(C2R) m_a− →(BUF) m_ai− →(INV) nao+ →(C2S) ros+
    /// ```
    ///
    /// so the period is `Dr + lvl + 2·(d(C2RX1) + d(C2SX1) + d(BUFX1) +
    /// d(INVX1))` exactly, where `Dr` is the matched rise delay and `lvl`
    /// the one-level fast fall — in the same rounded femtoseconds the
    /// simulator uses. `None` when the net is not a single-region ring.
    pub fn analytical_ring_cycle_fs(&self, lib: &Library) -> Option<TimeFs> {
        if self.regions.len() != 1 {
            return None;
        }
        let c2r = ns_to_fs(cell_delay_ns(lib, "C2RX1").ok()?);
        let c2s = ns_to_fs(cell_delay_ns(lib, "C2SX1").ok()?);
        let buf = ns_to_fs(cell_delay_ns(lib, "BUFX1").ok()?);
        let inv = ns_to_fs(cell_delay_ns(lib, "INVX1").ok()?);
        let delay = &self.nodes[self.regions[0].delay];
        let rise: TimeFs = delay.levels.iter().sum();
        let fall = delay.levels[0];
        Some(rise + fall + 2 * (c2r + c2s + buf + inv))
    }

    /// [`analytical_ring_cycle_fs`] in nanoseconds.
    pub fn analytical_ring_cycle_ns(&self, lib: &Library) -> Option<f64> {
        self.analytical_ring_cycle_fs(lib).map(fs_to_ns)
    }

    /// Synchronous period on `factors`' silicon: the slowest decomposed
    /// register-to-register path, each gate derated by its own draw.
    pub fn sync_period_fs(&self, factors: &[f64]) -> TimeFs {
        let mut base = self.control_gate_count();
        let mut worst: TimeFs = 0;
        for path in &self.sync_paths {
            let sum: TimeFs = path
                .iter()
                .enumerate()
                .map(|(j, &fs)| {
                    let scaled = (fs as f64 * factors[base + j]).round();
                    if scaled < 1.0 {
                        1
                    } else {
                        scaled as TimeFs
                    }
                })
                .sum();
            worst = worst.max(sum);
            base += path.len();
        }
        worst
    }

    /// Simulates one Monte-Carlo chip: per-gate draws from `var`, the
    /// slowest region's handshake cycle vs the synchronous critical
    /// path on the same silicon.
    ///
    /// # Errors
    /// Propagates simulation errors.
    pub fn chip_sample(&self, var: &GateVariability, chip: usize) -> Result<ChipSample, SimError> {
        let factors = self.chip_factors(var, chip);
        let cycles = self.cycle_times(&factors, DEFAULT_MAX_EDGES)?;
        let desync = cycles.iter().map(|c| c.cycle_ns).fold(0.0f64, f64::max);
        Ok(ChipSample {
            chip,
            desync_cycle_ns: desync,
            sync_period_ns: fs_to_ns(self.sync_period_fs(&factors)),
        })
    }

    /// The Monte-Carlo campaign: one chip per task on the work-stealing
    /// runner, merged in chip order — byte-identical for any `workers`.
    ///
    /// # Errors
    /// The first failing chip's error, in chip order.
    pub fn monte_carlo(
        &self,
        var: &GateVariability,
        chips: usize,
        workers: usize,
    ) -> Result<Vec<ChipSample>, SimError> {
        let samples = drd_runner::runner::run_indexed(chips, workers, |chip| {
            self.chip_sample(var, chip)
        });
        samples.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::vlib90;

    fn ring_spec(levels: usize) -> HandshakeSpec {
        // One region whose flip-flops feed themselves: the DDG self-loop
        // closes the request loop through the region's own master ack.
        // (A controlled region with *neither* controlled predecessors nor
        // successors gets loopback-request plus eager-ack and its request
        // degenerates to a pulse the asymmetric delay swallows — that
        // topology deadlocks by design, in silicon as here.)
        HandshakeSpec {
            regions: vec![RegionSpec {
                name: "g1".into(),
                controlled: true,
                matched_levels: levels,
                critical_delay_ns: levels as f64 * 0.08,
                loopback_latch: false,
            }],
            edges: vec![(0, 0)],
            level_delay_ns: 0.09,
            ff_overhead_ns: 0.15,
        }
    }

    fn pipeline_spec(stages: usize) -> HandshakeSpec {
        let regions = (0..stages)
            .map(|i| RegionSpec {
                name: format!("g{i}"),
                controlled: true,
                matched_levels: 3 + i % 4,
                critical_delay_ns: 0.2 + 0.05 * i as f64,
                loopback_latch: false,
            })
            .collect();
        HandshakeSpec {
            regions,
            edges: (1..stages).map(|i| (i - 1, i)).collect(),
            level_delay_ns: 0.09,
            ff_overhead_ns: 0.15,
        }
    }

    #[test]
    fn single_ring_matches_the_analytical_period_exactly() {
        let lib = vlib90::high_speed();
        // Matched delay dominates from a handful of levels up; the
        // analytic chain must be met cycle-for-cycle, femtosecond-exact.
        for levels in [6, 9, 14, 23] {
            let net = HandshakeNet::elaborate(&ring_spec(levels), &lib).unwrap();
            let cycles = net.nominal_cycle_times().unwrap();
            assert_eq!(cycles.len(), 1);
            let analytic = net.analytical_ring_cycle_fs(&lib).unwrap();
            assert_eq!(
                cycles[0].span_fs,
                analytic * cycles[0].cycles as TimeFs,
                "levels {levels}: measured {} fs/cycle over {} cycles, analytic {analytic} fs",
                cycles[0].span_fs / cycles[0].cycles as TimeFs,
                cycles[0].cycles,
            );
        }
    }

    #[test]
    fn cycle_time_respects_the_matched_delay_floor() {
        let lib = vlib90::high_speed();
        for spec in [ring_spec(8), pipeline_spec(3), pipeline_spec(5)] {
            let net = HandshakeNet::elaborate(&spec, &lib).unwrap();
            for c in net.nominal_cycle_times().unwrap() {
                assert!(
                    c.cycle_ns >= c.matched_delay_ns,
                    "{}: cycle {} < matched {}",
                    c.region,
                    c.cycle_ns,
                    c.matched_delay_ns
                );
            }
        }
    }

    #[test]
    fn pipeline_regions_run_in_lockstep() {
        let lib = vlib90::high_speed();
        let net = HandshakeNet::elaborate(&pipeline_spec(4), &lib).unwrap();
        let cycles = net.nominal_cycle_times().unwrap();
        assert_eq!(cycles.len(), 4);
        // A linear pipeline settles to one global rate: the slowest
        // stage's ring paces everyone (steady-state token flow).
        let max = cycles.iter().map(|c| c.cycle_ns).fold(0.0f64, f64::max);
        let min = cycles.iter().map(|c| c.cycle_ns).fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.05, "{min} vs {max}");
    }

    #[test]
    fn longer_matched_delays_slow_the_ring() {
        let lib = vlib90::high_speed();
        let short = HandshakeNet::elaborate(&ring_spec(4), &lib).unwrap();
        let long = HandshakeNet::elaborate(&ring_spec(16), &lib).unwrap();
        let a = short.nominal_cycle_times().unwrap()[0].cycle_ns;
        let b = long.nominal_cycle_times().unwrap()[0].cycle_ns;
        assert!(b > a, "{a} !< {b}");
    }

    #[test]
    fn tap_scaling_sweeps_the_period() {
        let lib = vlib90::high_speed();
        let net = HandshakeNet::elaborate(&ring_spec(10), &lib).unwrap();
        let factors = vec![1.0; net.gate_count()];
        let slow = net.cycle_times_scaled(&factors, 1.75, DEFAULT_MAX_EDGES).unwrap();
        let fast = net.cycle_times_scaled(&factors, 0.70, DEFAULT_MAX_EDGES).unwrap();
        assert!(slow[0].cycle_ns > fast[0].cycle_ns);
    }

    #[test]
    fn zero_sigma_chip_reproduces_the_nominal_run_bit_for_bit() {
        let lib = vlib90::high_speed();
        let net = HandshakeNet::elaborate(&pipeline_spec(3), &lib).unwrap();
        let nominal = net.nominal_cycle_times().unwrap();
        let var = GateVariability::new(0xDEAD, 0.0);
        for chip in 0..4 {
            let sample = net.chip_sample(&var, chip).unwrap();
            let want = nominal.iter().map(|c| c.cycle_ns).fold(0.0f64, f64::max);
            assert_eq!(sample.desync_cycle_ns.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn monte_carlo_is_byte_identical_for_any_worker_count() {
        let lib = vlib90::high_speed();
        let net = HandshakeNet::elaborate(&pipeline_spec(4), &lib).unwrap();
        let var = GateVariability::new(0xF00D, 0.15);
        let serial = net.monte_carlo(&var, 64, 1).unwrap();
        for workers in [2, 3, 8] {
            let par = net.monte_carlo(&var, 64, workers).unwrap();
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.desync_cycle_ns.to_bits(), b.desync_cycle_ns.to_bits());
                assert_eq!(a.sync_period_ns.to_bits(), b.sync_period_ns.to_bits());
            }
        }
    }

    #[test]
    fn variability_spreads_the_population() {
        let lib = vlib90::high_speed();
        let net = HandshakeNet::elaborate(&pipeline_spec(3), &lib).unwrap();
        let var = GateVariability::new(0xBEEF, 0.2);
        let samples = net.monte_carlo(&var, 128, 4).unwrap();
        let min = samples.iter().map(|s| s.desync_cycle_ns).fold(f64::INFINITY, f64::min);
        let max = samples.iter().map(|s| s.desync_cycle_ns).fold(0.0f64, f64::max);
        assert!(max > 1.1 * min, "spread {min}..{max}");
        // The sync model spreads too, and both stay positive.
        assert!(samples.iter().all(|s| s.sync_period_ns > 0.0));
    }

    #[test]
    fn uncontrolled_regions_are_skipped_and_empty_specs_error() {
        let lib = vlib90::high_speed();
        let mut spec = pipeline_spec(3);
        // A bypass edge keeps the survivors coupled once the middle
        // region degrades (matching how the flow's DDG records all
        // register-to-register dependencies, not just adjacent ones).
        spec.edges.push((0, 2));
        spec.regions[1].controlled = false;
        let net = HandshakeNet::elaborate(&spec, &lib).unwrap();
        assert_eq!(net.region_names().len(), 2);
        // The degraded region contributes no controllers; the survivors
        // handshake through the bypass edge and still run.
        net.nominal_cycle_times().unwrap();

        for r in &mut spec.regions {
            r.controlled = false;
        }
        assert!(HandshakeNet::elaborate(&spec, &lib).is_err());
    }

    /// An open chain whose source's matched delay dwarfs the sink's
    /// response time wedges (the pulse-swallowing hazard) — and the
    /// request-extending latch of the liveness repair un-wedges it
    /// without touching the delay imbalance.
    #[test]
    fn loopback_latch_unwedges_the_imbalanced_open_chain() {
        let lib = vlib90::high_speed();
        let mut spec = HandshakeSpec {
            regions: vec![
                RegionSpec {
                    name: "src".into(),
                    controlled: true,
                    matched_levels: 24,
                    critical_delay_ns: 24.0 * 0.08,
                    loopback_latch: false,
                },
                RegionSpec {
                    name: "sink".into(),
                    controlled: true,
                    matched_levels: 2,
                    critical_delay_ns: 2.0 * 0.08,
                    loopback_latch: false,
                },
            ],
            edges: vec![(0, 1)],
            level_delay_ns: 0.09,
            ff_overhead_ns: 0.15,
        };
        let wedged = HandshakeNet::elaborate(&spec, &lib).unwrap();
        let err = wedged.nominal_cycle_times().expect_err("imbalance wedges");
        assert!(err.to_string().contains("deadlock"), "{err}");

        spec.regions[0].loopback_latch = true;
        let repaired = HandshakeNet::elaborate(&spec, &lib).unwrap();
        let cycles = repaired.nominal_cycle_times().expect("latched loopback settles");
        assert_eq!(cycles.len(), 2);
        // The source still has to traverse its full matched delay.
        assert!(cycles[0].cycle_ns >= cycles[0].matched_delay_ns);
        // The extender must not perturb a healthy balanced topology's
        // liveness either.
        let mut balanced = pipeline_spec(3);
        balanced.regions[0].loopback_latch = true;
        let net = HandshakeNet::elaborate(&balanced, &lib).unwrap();
        net.nominal_cycle_times().expect("balanced chain still settles");
    }

    #[test]
    fn factor_length_mismatch_is_rejected() {
        let lib = vlib90::high_speed();
        let net = HandshakeNet::elaborate(&ring_spec(4), &lib).unwrap();
        assert!(net.cycle_times(&[1.0], DEFAULT_MAX_EDGES).is_err());
    }
}
