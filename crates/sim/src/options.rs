//! Simulation options: corner, intra-die variation, initialization.

use drd_liberty::Corner;

/// Options controlling a [`crate::Simulator`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Operating corner (derates every delay and the power model).
    pub corner: Corner,
    /// Standard deviation of the per-instance Gaussian delay factor
    /// (intra-die variation; 0 disables it). The factor is clamped to
    /// `[1 - 4σ, 1 + 4σ]`.
    pub intra_die_sigma: f64,
    /// Seed for the per-instance variation sampling.
    pub seed: u64,
    /// Initialize all sequential state to 0 at time 0 (the paper's designs
    /// are reset before measurement; this models the settled post-reset
    /// state without simulating X-propagation through reset logic).
    pub init_state_zero: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            corner: Corner::typical(),
            intra_die_sigma: 0.0,
            seed: 0xD5C0DE,
            init_state_zero: true,
        }
    }
}

impl SimOptions {
    /// Options at a given corner, otherwise default.
    pub fn at_corner(corner: Corner) -> Self {
        SimOptions {
            corner,
            ..SimOptions::default()
        }
    }

    /// Enables intra-die variation with the given sigma and seed.
    pub fn with_variation(mut self, sigma: f64, seed: u64) -> Self {
        self.intra_die_sigma = sigma;
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let o = SimOptions::at_corner(Corner::worst()).with_variation(0.05, 42);
        assert_eq!(o.corner.name, "worst");
        assert_eq!(o.intra_die_sigma, 0.05);
        assert_eq!(o.seed, 42);
        assert!(o.init_state_zero);
    }
}
