//! Switching-activity power estimation (Fig. 5.5's methodology).
//!
//! The paper writes VCD during simulation, converts to SAIF and feeds it
//! back to the synthesis tool for power reports. Here the simulator counts
//! net toggles directly and charges each toggle to its driving cell's
//! switching energy; leakage is summed per cell. Both components are
//! derated to the operating corner (dynamic ∝ V², leakage by the corner's
//! leakage factor).

use drd_liberty::Corner;

/// A power report over a measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Dynamic switching power (mW-like units).
    pub dynamic: f64,
    /// Leakage power (mW-like units).
    pub leakage: f64,
    /// Window length (ns).
    pub window_ns: f64,
    /// Total toggles counted in the window.
    pub toggles: u64,
}

impl PowerReport {
    /// Total power.
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage
    }
}

pub(crate) fn compute(
    toggles: &[u64],
    driver: &[Option<u32>],
    cell_energy: &[f64],
    leakage_uw: f64,
    corner: Corner,
    window_ns: f64,
) -> PowerReport {
    let mut energy = 0.0f64; // pJ-like units
    let mut total_toggles = 0u64;
    for (net, &count) in toggles.iter().enumerate() {
        if count == 0 {
            continue;
        }
        total_toggles += count;
        if let Some(cell) = driver[net] {
            energy += count as f64 * cell_energy[cell as usize];
        }
    }
    let window = window_ns.max(1e-9);
    // pJ / ns = mW.
    let dynamic = energy * corner.dynamic_energy_factor() / window;
    let leakage = leakage_uw * corner.leakage_factor / 1000.0;
    PowerReport {
        dynamic,
        leakage,
        window_ns,
        toggles: total_toggles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_scales_with_activity_and_corner() {
        let toggles = vec![100u64, 50];
        let driver = vec![Some(0u32), Some(1)];
        let energy = vec![0.002, 0.004];
        let typical = compute(&toggles, &driver, &energy, 500.0, Corner::typical(), 10.0);
        assert!(typical.dynamic > 0.0);
        assert_eq!(typical.toggles, 150);
        assert!((typical.leakage - 0.5).abs() < 1e-12);

        // Best corner: higher voltage → more dynamic power per toggle.
        let best = compute(&toggles, &driver, &energy, 500.0, Corner::best(), 10.0);
        assert!(best.dynamic > typical.dynamic);
        assert!(best.leakage > typical.leakage);

        // Shorter window (higher frequency) → more power.
        let fast = compute(&toggles, &driver, &energy, 500.0, Corner::typical(), 5.0);
        assert!((fast.dynamic - 2.0 * typical.dynamic).abs() < 1e-12);
        assert!((fast.total() - (fast.dynamic + fast.leakage)).abs() < 1e-12);
    }

    #[test]
    fn undriven_nets_contribute_no_dynamic_power() {
        let toggles = vec![10u64];
        let driver = vec![None];
        let energy: Vec<f64> = vec![];
        let r = compute(&toggles, &driver, &energy, 0.0, Corner::typical(), 1.0);
        assert_eq!(r.dynamic, 0.0);
        assert_eq!(r.toggles, 10);
    }
}
