//! # drd-sim — event-driven gate-level simulation
//!
//! Stands in for the paper's Cadence VerilogXL functional simulation with
//! back-annotated delays (§4.8, §5.1). The simulator executes flattened
//! gate-level netlists — synchronous *and* desynchronized, including
//! C-Muller elements and the handshaking controller network — with:
//!
//! * per-instance delays derived from the library's timing arcs, derated
//!   by a PVT [`drd_liberty::Corner`] and per-instance Gaussian intra-die
//!   variation (the physical basis of the paper's variability claims),
//! * capture logging at every sequential element, the observable on which
//!   **flow equivalence** is defined — "each individual sequential element
//!   in the desynchronized circuit will possess the exact same data
//!   sequence as its synchronous counterpart" (§2.1),
//! * rising-edge watches for measuring the *effective period* of a
//!   desynchronized circuit (Fig. 5.3),
//! * toggle-based switching power plus corner-derated leakage (Fig. 5.5).
//!
//! ```
//! use drd_liberty::vlib90;
//! use drd_netlist::{Conn, Design, PortDir};
//! use drd_sim::{SimOptions, Simulator};
//! use drd_liberty::Lv;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = vlib90::high_speed();
//! let mut design = Design::new();
//! let m = design.add_module("t");
//! let module = design.module_mut(m);
//! module.add_port("a", PortDir::Input)?;
//! module.add_port("z", PortDir::Output)?;
//! let a = module.find_net("a").ok_or("a")?;
//! let z = module.find_net("z").ok_or("z")?;
//! module.add_cell("u", "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(z))])?;
//! let mut sim = Simulator::new(&design, &lib, SimOptions::default())?;
//! sim.poke("a", Lv::Zero)?;
//! sim.run_for(1.0);
//! assert_eq!(sim.peek("z")?, Lv::One);
//! # Ok(())
//! # }
//! ```

mod capture;
mod engine;
mod error;
pub mod events;
pub mod handshake;
mod names;
mod options;
mod power;
pub mod variability;

pub use capture::{compare_capture_logs, CaptureLog, FlowCheck};
pub use engine::Simulator;
pub use error::SimError;
pub use events::{fs_to_ns, ns_to_fs, EventQueue, TimeFs};
pub use handshake::{ChipSample, HandshakeNet, HandshakeSpec, RegionCycle, RegionSpec};
pub use options::SimOptions;
pub use power::PowerReport;
pub use variability::GateVariability;
