//! Capture logs and flow-equivalence comparison (§2.1).
//!
//! The simulator records the data value stored by every sequential element
//! at each of its capture events (flip-flop active edge, latch closing).
//! Desynchronization preserves *flow equivalence*: projected onto any
//! element, the captured value sequence of the desynchronized circuit must
//! equal its synchronous counterpart's — times may differ arbitrarily.

use drd_liberty::Lv;

use crate::names::SymSlots;

/// Per-element capture sequences.
#[derive(Debug, Clone, Default)]
pub struct CaptureLog {
    names: SymSlots,
    seqs: Vec<Vec<(u64, Lv)>>,
}

impl CaptureLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        CaptureLog::default()
    }

    /// Creates an empty log sharing an existing symbol table, so
    /// registering element names already interned there allocates
    /// nothing.
    pub(crate) fn with_table(syms: drd_netlist::SymbolTable) -> Self {
        CaptureLog {
            names: SymSlots::from_table(syms),
            seqs: Vec::new(),
        }
    }

    /// Registers an element and returns its slot.
    pub(crate) fn add_element(&mut self, name: &str) -> u32 {
        let slot = self.names.add(name);
        self.seqs.push(Vec::new());
        slot
    }

    pub(crate) fn record(&mut self, slot: u32, time_ps: u64, value: Lv) {
        self.seqs[slot as usize].push((time_ps, value));
    }

    /// Names of all recorded elements.
    pub fn elements(&self) -> impl Iterator<Item = &str> {
        self.names.iter()
    }

    /// The captured value sequence of `element` (times dropped).
    pub fn sequence(&self, element: &str) -> Option<Vec<Lv>> {
        let slot = self.names.get(element)?;
        Some(self.seqs[slot as usize].iter().map(|&(_, v)| v).collect())
    }

    /// The captured `(time_ns, value)` sequence of `element`.
    pub fn timed_sequence(&self, element: &str) -> Option<Vec<(f64, Lv)>> {
        let slot = self.names.get(element)?;
        Some(
            self.seqs[slot as usize]
                .iter()
                .map(|&(t, v)| (t as f64 / 1000.0, v))
                .collect(),
        )
    }

    /// Number of capture events of `element`.
    pub fn capture_count(&self, element: &str) -> usize {
        self.names
            .get(element)
            .map(|s| self.seqs[s as usize].len())
            .unwrap_or(0)
    }
}

/// Result of a flow-equivalence comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowCheck {
    /// All compared elements agree on the compared prefix.
    Equivalent {
        /// Number of elements compared.
        elements: usize,
        /// Total capture events compared.
        events: usize,
    },
    /// Some element's sequences diverge.
    Diverged {
        /// The reference element name.
        element: String,
        /// Index of the first diverging capture.
        at: usize,
        /// Reference (synchronous) value.
        expected: Lv,
        /// Observed (desynchronized) value.
        actual: Lv,
    },
    /// An element of the reference has no counterpart in the DUT.
    MissingElement {
        /// The unmatched reference element.
        element: String,
    },
}

impl FlowCheck {
    /// True for [`FlowCheck::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, FlowCheck::Equivalent { .. })
    }
}

/// Compares a synchronous reference log against a desynchronized log.
///
/// `map_name` maps a reference element name to the corresponding DUT
/// element name (e.g. `r1` → `r1_slave` after flip-flop substitution).
/// Comparison is over the shortest common prefix per element — the
/// desynchronized circuit is elastic, so the two runs rarely stop at the
/// same capture count. Elements whose common prefix is empty are skipped.
pub fn compare_capture_logs(
    reference: &CaptureLog,
    dut: &CaptureLog,
    mut map_name: impl FnMut(&str) -> String,
) -> FlowCheck {
    let mut elements = 0usize;
    let mut events = 0usize;
    for name in reference.elements() {
        let Some(ref_seq) = reference.sequence(name) else {
            continue;
        };
        let dut_name = map_name(name);
        let Some(dut_seq) = dut.sequence(&dut_name) else {
            return FlowCheck::MissingElement {
                element: name.to_owned(),
            };
        };
        let n = ref_seq.len().min(dut_seq.len());
        for i in 0..n {
            if ref_seq[i] != dut_seq[i] {
                return FlowCheck::Diverged {
                    element: name.to_owned(),
                    at: i,
                    expected: ref_seq[i],
                    actual: dut_seq[i],
                };
            }
        }
        elements += 1;
        events += n;
    }
    FlowCheck::Equivalent { elements, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(entries: &[(&str, &[Lv])]) -> CaptureLog {
        let mut l = CaptureLog::new();
        for (name, seq) in entries {
            let slot = l.add_element(name);
            for (i, v) in seq.iter().enumerate() {
                l.record(slot, i as u64 * 1000, *v);
            }
        }
        l
    }

    #[test]
    fn equivalent_logs() {
        let a = log(&[("r1", &[Lv::One, Lv::Zero]), ("r2", &[Lv::Zero])]);
        let b = log(&[
            ("r1_slave", &[Lv::One, Lv::Zero, Lv::One]),
            ("r2_slave", &[Lv::Zero, Lv::Zero]),
        ]);
        let check = compare_capture_logs(&a, &b, |n| format!("{n}_slave"));
        assert!(check.is_equivalent());
        if let FlowCheck::Equivalent { elements, events } = check {
            assert_eq!(elements, 2);
            assert_eq!(events, 3);
        }
    }

    #[test]
    fn diverging_logs() {
        let a = log(&[("r1", &[Lv::One, Lv::Zero])]);
        let b = log(&[("r1", &[Lv::One, Lv::One])]);
        match compare_capture_logs(&a, &b, |n| n.to_owned()) {
            FlowCheck::Diverged { element, at, expected, actual } => {
                assert_eq!(element, "r1");
                assert_eq!(at, 1);
                assert_eq!(expected, Lv::Zero);
                assert_eq!(actual, Lv::One);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn missing_element() {
        let a = log(&[("r1", &[Lv::One])]);
        let b = log(&[]);
        assert!(matches!(
            compare_capture_logs(&a, &b, |n| n.to_owned()),
            FlowCheck::MissingElement { .. }
        ));
    }

    #[test]
    fn timed_sequences_are_in_ns() {
        let l = log(&[("r", &[Lv::One, Lv::Zero])]);
        let t = l.timed_sequence("r").unwrap();
        assert_eq!(t[1].0, 1.0);
        assert_eq!(l.capture_count("r"), 2);
        assert_eq!(l.capture_count("ghost"), 0);
    }
}
