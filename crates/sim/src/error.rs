//! Simulation error type.

use std::error::Error;
use std::fmt;

/// Errors from simulator construction and driving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A netlist cell references a library cell that does not exist.
    UnknownCell {
        /// The missing cell name.
        name: String,
    },
    /// A referenced net or port does not exist.
    UnknownNet {
        /// The missing net/port name.
        name: String,
    },
    /// The netlist could not be elaborated (flattening/connectivity).
    Elaboration {
        /// Description of the problem.
        message: String,
    },
    /// Handshake-level timing simulation failed (deadlock, unsettled
    /// reset, event-cap overrun, or a malformed control-network spec).
    Handshake {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownCell { name } => write!(f, "unknown library cell `{name}`"),
            SimError::UnknownNet { name } => write!(f, "unknown net `{name}`"),
            SimError::Elaboration { message } => write!(f, "elaboration failed: {message}"),
            SimError::Handshake { message } => write!(f, "handshake simulation failed: {message}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        let e = SimError::UnknownNet { name: "clk".into() };
        assert!(e.to_string().contains("clk"));
        fn ok<T: Error + Send + Sync>() {}
        ok::<SimError>();
    }
}
