//! Symbol-backed slot tables for the simulator's API boundary.
//!
//! Both the simulator (net names) and the capture log (element names)
//! need the same bidirectional lookup: a dense `u32` slot per name for
//! hot-path indexing, plus name resolution at the API boundary. Instead
//! of duplicating every name into an owned `String` table, the slots are
//! keyed on the netlist's interned [`Symbol`]s and share the module's
//! [`SymbolTable`] (a clone costs one refcount bump per name). Strings
//! only appear at `poke`/`peek`/report boundaries.

use std::collections::HashMap;

use drd_netlist::{Symbol, SymbolTable};

/// An append-only `name ↔ u32` slot table over interned symbols.
#[derive(Debug, Clone, Default)]
pub(crate) struct SymSlots {
    syms: SymbolTable,
    slots: Vec<Symbol>,
    index: HashMap<Symbol, u32>,
}

impl SymSlots {
    /// An empty slot table sharing `syms` (typically a clone of the
    /// elaborated module's table, so registering existing names is
    /// allocation-free).
    pub fn from_table(syms: SymbolTable) -> Self {
        SymSlots {
            syms,
            slots: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Registers `name` and returns its slot, interning it if needed.
    /// The caller guarantees uniqueness (netlist nets and capture
    /// elements are unique by construction); a duplicate would shadow
    /// the earlier slot.
    pub fn add(&mut self, name: &str) -> u32 {
        let sym = self.syms.intern(name);
        self.add_sym(sym)
    }

    /// Registers an already-interned symbol and returns its slot.
    pub fn add_sym(&mut self, sym: Symbol) -> u32 {
        let slot = self.slots.len() as u32;
        self.slots.push(sym);
        self.index.insert(sym, slot);
        slot
    }

    /// The slot of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<u32> {
        let sym = self.syms.lookup(name)?;
        self.index.get(&sym).copied()
    }

    /// All registered names, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.slots.iter().map(|&s| self.syms.resolve(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_dense_and_resolvable() {
        let mut t = SymSlots::default();
        assert_eq!(t.add("a"), 0);
        assert_eq!(t.add("b"), 1);
        assert_eq!(t.get("a"), Some(0));
        assert_eq!(t.get("b"), Some(1));
        assert_eq!(t.get("c"), None);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn shared_table_registration_reuses_symbols() {
        let mut syms = SymbolTable::default();
        let pre = syms.intern("n0");
        let mut t = SymSlots::from_table(syms);
        let slot = t.add_sym(pre);
        assert_eq!(t.get("n0"), Some(slot));
        // A name absent from the shared table is still registrable.
        t.add("fresh");
        assert_eq!(t.get("fresh"), Some(1));
    }
}
