//! A shared name↔index table.
//!
//! Both the simulator (net names) and the capture log (element names)
//! need the same bidirectional lookup: a dense `u32` slot per name for
//! hot-path indexing, plus name resolution at the API boundary. One type
//! keeps the two maps from drifting apart.

use std::collections::HashMap;

/// An append-only bidirectional `name ↔ u32` table.
#[derive(Debug, Clone, Default)]
pub(crate) struct NameTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl NameTable {
    /// An empty table sized for `capacity` names.
    pub fn with_capacity(capacity: usize) -> Self {
        NameTable {
            names: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
        }
    }

    /// Registers `name` and returns its slot. The caller guarantees
    /// uniqueness (netlist nets and capture elements are unique by
    /// construction); a duplicate would shadow the earlier slot.
    pub fn add(&mut self, name: &str) -> u32 {
        let slot = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), slot);
        slot
    }

    /// The slot of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// All registered names, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_dense_and_resolvable() {
        let mut t = NameTable::with_capacity(2);
        assert_eq!(t.add("a"), 0);
        assert_eq!(t.add("b"), 1);
        assert_eq!(t.get("a"), Some(0));
        assert_eq!(t.get("b"), Some(1));
        assert_eq!(t.get("c"), None);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec!["a", "b"]);
    }
}
