//! The event-driven simulation engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, BTreeSet, HashMap};

use drd_liberty::function::Expr;
use drd_liberty::{Library, Lv, SeqKind};
use drd_netlist::{Conn, Design, Module, PortDir};

use crate::capture::CaptureLog;
use crate::names::SymSlots;
use crate::{SimError, SimOptions};

/// Compiled boolean expression over net indices.
#[derive(Debug, Clone)]
enum CExpr {
    Net(u32),
    Const(Lv),
    /// The sequential element's own state variable (`IQ`).
    State,
    Not(Box<CExpr>),
    And(Vec<CExpr>),
    Or(Vec<CExpr>),
    Xor(Box<CExpr>, Box<CExpr>),
}

impl CExpr {
    fn eval(&self, nets: &[Lv], state: Lv) -> Lv {
        match self {
            CExpr::Net(n) => nets[*n as usize],
            CExpr::Const(v) => *v,
            CExpr::State => state,
            CExpr::Not(e) => !e.eval(nets, state),
            CExpr::And(es) => es.iter().fold(Lv::One, |a, e| a & e.eval(nets, state)),
            CExpr::Or(es) => es.iter().fold(Lv::Zero, |a, e| a | e.eval(nets, state)),
            CExpr::Xor(a, b) => a.eval(nets, state) ^ b.eval(nets, state),
        }
    }
}

/// An output pin bound to a net with its (derated) propagation delay.
#[derive(Debug, Clone, Copy)]
struct OutPin {
    net: u32,
    delay_ps: u64,
}

#[derive(Debug, Clone)]
enum Model {
    Comb {
        outs: Vec<(CExpr, OutPin)>,
    },
    Ff {
        clk: u32,
        next: CExpr,
        clear: Option<CExpr>,
        preset: Option<CExpr>,
        q: Option<OutPin>,
        qn: Option<OutPin>,
    },
    Latch {
        en: u32,
        data: CExpr,
        clear: Option<CExpr>,
        preset: Option<CExpr>,
        q: Option<OutPin>,
        qn: Option<OutPin>,
    },
    CElement {
        ins: Vec<u32>,
        /// Active-low reset net (forces 0).
        reset: Option<u32>,
        /// Active-low set net (forces 1).
        set: Option<u32>,
        out: OutPin,
    },
}

#[derive(Debug, Clone)]
struct SimCell {
    name: String,
    model: Model,
    /// Sequential state (FF/latch/C-element).
    state: Lv,
    /// Previous clock / enable value for edge detection.
    last_clk: Lv,
    /// Capture-log slot for FFs and latches.
    capture_slot: Option<u32>,
    /// Switching energy per output toggle.
    energy: f64,
    /// Leakage power contribution.
    leakage: f64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    net: u32,
    value: Lv,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

const PS_PER_NS: f64 = 1000.0;

fn ns_to_ps(ns: f64) -> u64 {
    (ns * PS_PER_NS).round().max(0.0) as u64
}

/// Event-driven gate-level simulator over a flattened design.
#[derive(Debug, Clone)]
pub struct Simulator {
    net_values: Vec<Lv>,
    net_names: SymSlots,
    cells: Vec<SimCell>,
    /// net → cells with an input on that net.
    loads: Vec<Vec<u32>>,
    /// net → driving cell (for power attribution).
    driver: Vec<Option<u32>>,
    /// net → last *scheduled* value (suppresses redundant events).
    pending: Vec<Lv>,
    queue: BinaryHeap<Reverse<Event>>,
    time_ps: u64,
    seq: u64,
    toggles: Vec<u64>,
    watches: HashMap<u32, Vec<(u64, bool)>>,
    captures: CaptureLog,
    leakage_total: f64,
    corner: drd_liberty::Corner,
    /// Time at which power counters were last reset.
    window_start_ps: u64,
}

impl Simulator {
    /// Elaborates and flattens `design`'s top module for simulation.
    ///
    /// # Errors
    /// Returns [`SimError`] for unknown cells or elaboration failures.
    pub fn new(design: &Design, lib: &Library, opts: SimOptions) -> Result<Self, SimError> {
        let flat = drd_netlist::flatten(design, design.top()).map_err(|e| {
            SimError::Elaboration {
                message: e.to_string(),
            }
        })?;
        Self::from_flat(&flat, lib, opts)
    }

    /// Elaborates an already-flat module.
    ///
    /// # Errors
    /// Returns [`SimError`] for unknown cells or elaboration failures.
    pub fn from_flat(flat: &Module, lib: &Library, opts: SimOptions) -> Result<Self, SimError> {
        let net_count = flat.net_count();
        let mut sim = Simulator {
            net_values: vec![Lv::X; net_count],
            net_names: SymSlots::from_table(flat.symbols().clone()),
            cells: Vec::new(),
            loads: vec![Vec::new(); net_count],
            driver: vec![None; net_count],
            pending: vec![Lv::X; net_count],
            queue: BinaryHeap::new(),
            time_ps: 0,
            seq: 0,
            toggles: vec![0; net_count],
            watches: HashMap::new(),
            captures: CaptureLog::with_table(flat.symbols().clone()),
            leakage_total: 0.0,
            corner: opts.corner,
            window_start_ps: 0,
        };
        for (nid, _) in flat.nets() {
            let slot = sim.net_names.add_sym(flat.net_sym(nid));
            debug_assert_eq!(slot, nid.index() as u32);
        }

        // Net load capacitances for the delay model.
        let mut net_cap = vec![0.0f64; net_count];
        for (_, cell) in flat.cells() {
            let lc = lib.cell_of(cell.kind_ref()).ok_or_else(|| SimError::UnknownCell {
                name: cell.kind_name().to_owned(),
            })?;
            for (i, &(_, conn)) in cell.pins().iter().enumerate() {
                if let Conn::Net(n) = conn {
                    if let Some(p) = lc.pin(cell.pin_name(i)) {
                        if p.dir == PortDir::Input {
                            net_cap[n.index()] += p.capacitance;
                        }
                    }
                }
            }
        }

        // Deterministic per-instance variation via a tiny xorshift PRNG +
        // Box–Muller (rand's distributions crate is not needed for this).
        let mut rng_state = opts.seed | 1;
        let mut next_uniform = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut gaussian_factor = move |sigma: f64| -> f64 {
            if sigma <= 0.0 {
                return 1.0;
            }
            let (u1, u2): (f64, f64) = (next_uniform().max(1e-12), next_uniform());
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (1.0 + z * sigma).clamp(1.0 - 4.0 * sigma, 1.0 + 4.0 * sigma)
        };

        for (_, cell) in flat.cells() {
            let lc = lib.cell_of(cell.kind_ref()).expect("checked above");
            let factor = opts.corner.delay_factor * gaussian_factor(opts.intra_die_sigma);
            let cell_idx = sim.cells.len() as u32;

            // Pin bindings.
            let mut bind: HashMap<&str, Conn> = HashMap::new();
            for (i, &(_, conn)) in cell.pins().iter().enumerate() {
                bind.insert(cell.pin_name(i), conn);
            }
            let net_of = |pin: &str| -> Option<u32> {
                match bind.get(pin) {
                    Some(Conn::Net(n)) => Some(n.index() as u32),
                    _ => None,
                }
            };
            let out_pin = |pin: &str| -> Option<OutPin> {
                let net = net_of(pin)?;
                let intrinsic = lc
                    .arcs
                    .iter()
                    .filter(|a| a.to == pin)
                    .map(|a| a.rise.max(a.fall))
                    .fold(0.0f64, f64::max);
                let res = lc.pin(pin).map(|p| p.drive_resistance).unwrap_or(0.0);
                let delay = (intrinsic + res * net_cap[net as usize]) * factor;
                Some(OutPin {
                    net,
                    delay_ps: ns_to_ps(delay).max(1),
                })
            };
            let compile = |expr: &Expr| -> CExpr { compile_expr(expr, &bind, "IQ") };

            // Register input loads.
            let add_load = |net: Option<u32>, loads: &mut Vec<Vec<u32>>| {
                if let Some(n) = net {
                    if !loads[n as usize].contains(&cell_idx) {
                        loads[n as usize].push(cell_idx);
                    }
                }
            };
            for pin in lc.input_pins() {
                add_load(net_of(&pin.name), &mut sim.loads);
            }

            let model = match &lc.seq {
                SeqKind::None => {
                    let mut outs = Vec::new();
                    for pin in lc.output_pins() {
                        let (Some(f), Some(op)) = (&pin.function, out_pin(&pin.name)) else {
                            continue;
                        };
                        outs.push((compile(f), op));
                    }
                    Model::Comb { outs }
                }
                SeqKind::FlipFlop(ff) => Model::Ff {
                    clk: net_of(&ff.clocked_on).ok_or_else(|| SimError::Elaboration {
                        message: format!("flip-flop `{}` has no clock net", cell.name),
                    })?,
                    next: compile(&ff.next_state),
                    clear: ff.clear.as_ref().map(&compile),
                    preset: ff.preset.as_ref().map(&compile),
                    q: out_pin(&ff.q),
                    qn: ff.qn.as_deref().and_then(out_pin),
                },
                SeqKind::Latch(l) => Model::Latch {
                    en: net_of(&l.enable).ok_or_else(|| SimError::Elaboration {
                        message: format!("latch `{}` has no enable net", cell.name),
                    })?,
                    data: compile(&l.data_in),
                    clear: l.clear.as_ref().map(&compile),
                    preset: l.preset.as_ref().map(&compile),
                    q: out_pin(&l.q),
                    qn: l.qn.as_deref().and_then(out_pin),
                },
                SeqKind::CElement {
                    inputs,
                    reset,
                    set,
                    q,
                } => Model::CElement {
                    ins: inputs.iter().filter_map(|p| net_of(p)).collect(),
                    reset: reset.as_deref().and_then(net_of),
                    set: set.as_deref().and_then(net_of),
                    out: out_pin(q).ok_or_else(|| SimError::Elaboration {
                        message: format!("C-element `{}` has no output net", cell.name),
                    })?,
                },
            };

            // Record output drivers for power attribution.
            for pin in lc.output_pins() {
                if let Some(n) = net_of(&pin.name) {
                    sim.driver[n as usize] = Some(cell_idx);
                }
            }

            let is_storage = matches!(model, Model::Ff { .. } | Model::Latch { .. });
            let capture_slot = if is_storage {
                Some(sim.captures.add_element(cell.name))
            } else {
                None
            };
            let initial_state = if opts.init_state_zero && is_storage {
                Lv::Zero
            } else {
                Lv::X
            };
            sim.leakage_total += lc.leakage;
            sim.cells.push(SimCell {
                name: cell.name.to_owned(),
                model,
                state: initial_state,
                last_clk: Lv::X,
                capture_slot,
                energy: lc.switching_energy,
                leakage: lc.leakage,
            });
        }

        // Constant ties.
        for &(net, value) in flat.const_ties() {
            let idx = net.index() as u32;
            sim.schedule(idx, Lv::from_bool(value), 0);
        }
        // Initial output events for zero-initialized storage.
        if opts.init_state_zero {
            for i in 0..sim.cells.len() {
                let (q, qn) = match &sim.cells[i].model {
                    Model::Ff { q, qn, .. } | Model::Latch { q, qn, .. } => (*q, *qn),
                    _ => continue,
                };
                if let Some(q) = q {
                    sim.schedule(q.net, Lv::Zero, 0);
                }
                if let Some(qn) = qn {
                    sim.schedule(qn.net, Lv::One, 0);
                }
            }
        }
        // Evaluate every cell once so constant-tied inputs propagate even
        // though no net event will ever arrive for them.
        for i in 0..sim.cells.len() as u32 {
            sim.eval_cell(i);
        }
        Ok(sim)
    }

    fn net_index(&self, name: &str) -> Result<u32, SimError> {
        self.net_names
            .get(name)
            .ok_or_else(|| SimError::UnknownNet {
                name: name.to_owned(),
            })
    }

    /// Forces a port/net to `value` at the current time.
    ///
    /// # Errors
    /// Returns [`SimError::UnknownNet`] for unknown names.
    pub fn poke(&mut self, net: &str, value: Lv) -> Result<(), SimError> {
        let idx = self.net_index(net)?;
        self.schedule(idx, value, self.time_ps);
        Ok(())
    }

    /// Forces a port/net to `value` at `at_ns` (absolute time).
    ///
    /// # Errors
    /// Returns [`SimError::UnknownNet`] for unknown names.
    pub fn poke_at(&mut self, net: &str, value: Lv, at_ns: f64) -> Result<(), SimError> {
        let idx = self.net_index(net)?;
        let t = ns_to_ps(at_ns).max(self.time_ps);
        self.schedule(idx, value, t);
        Ok(())
    }

    /// Schedules a square clock on `port`: rising edges at `offset + k·p`.
    ///
    /// # Errors
    /// Returns [`SimError::UnknownNet`] for unknown names.
    pub fn schedule_clock(
        &mut self,
        port: &str,
        period_ns: f64,
        offset_ns: f64,
        cycles: usize,
    ) -> Result<(), SimError> {
        let idx = self.net_index(port)?;
        let period = ns_to_ps(period_ns);
        let offset = ns_to_ps(offset_ns);
        self.schedule(idx, Lv::Zero, self.time_ps);
        for k in 0..cycles {
            let rise = offset + k as u64 * period;
            self.schedule(idx, Lv::One, rise);
            self.schedule(idx, Lv::Zero, rise + period / 2);
        }
        Ok(())
    }

    /// Current value of a net.
    ///
    /// # Errors
    /// Returns [`SimError::UnknownNet`] for unknown names.
    pub fn peek(&self, net: &str) -> Result<Lv, SimError> {
        Ok(self.net_values[self.net_index(net)? as usize])
    }

    /// Records rising-edge times of `net` from now on.
    ///
    /// # Errors
    /// Returns [`SimError::UnknownNet`] for unknown names.
    pub fn watch(&mut self, net: &str) -> Result<(), SimError> {
        let idx = self.net_index(net)?;
        self.watches.entry(idx).or_default();
        Ok(())
    }

    /// Rising-edge times (ns) recorded for a watched net.
    pub fn rising_edges(&self, net: &str) -> Vec<f64> {
        self.edge_trace(net)
            .into_iter()
            .filter(|&(_, rising)| rising)
            .map(|(t, _)| t)
            .collect()
    }

    /// All recorded edges of a watched net as `(time_ns, rising)`.
    pub fn edge_trace(&self, net: &str) -> Vec<(f64, bool)> {
        match self.net_names.get(net) {
            Some(idx) => self
                .watches
                .get(&idx)
                .map(|v| {
                    v.iter()
                        .map(|&(t, rising)| (t as f64 / PS_PER_NS, rising))
                        .collect()
                })
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Current simulation time (ns).
    pub fn time_ns(&self) -> f64 {
        self.time_ps as f64 / PS_PER_NS
    }

    /// Runs the simulation forward by `ns`.
    pub fn run_for(&mut self, ns: f64) {
        let end = self.time_ps + ns_to_ps(ns);
        self.run_until_ps(end);
        self.time_ps = end;
    }

    /// Runs until the event queue drains or `max_ns` elapses. Returns true
    /// if the circuit went quiet.
    pub fn run_until_quiet(&mut self, max_ns: f64) -> bool {
        let end = self.time_ps + ns_to_ps(max_ns);
        self.run_until_ps(end);
        if self.queue.is_empty() {
            true
        } else {
            self.time_ps = end;
            false
        }
    }

    fn run_until_ps(&mut self, end: u64) {
        let mut affected: BTreeSet<u32> = BTreeSet::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time > end {
                break;
            }
            let t = head.time;
            self.time_ps = t;
            affected.clear();
            // Apply all events at this timestamp in schedule order.
            while let Some(Reverse(ev)) = self.queue.peek() {
                if ev.time != t {
                    break;
                }
                let Reverse(ev) = self.queue.pop().expect("peeked");
                let net = ev.net as usize;
                if self.net_values[net] != ev.value {
                    if self.net_values[net].is_known() && ev.value.is_known() {
                        self.toggles[net] += 1;
                    }
                    if ev.value.is_known() {
                        if let Some(edges) = self.watches.get_mut(&ev.net) {
                            edges.push((t, ev.value == Lv::One));
                        }
                    }
                    self.net_values[net] = ev.value;
                    affected.extend(self.loads[net].iter().copied());
                }
            }
            for &cell in affected.iter() {
                self.eval_cell(cell);
            }
        }
    }

    fn schedule(&mut self, net: u32, value: Lv, time: u64) {
        if self.pending[net as usize] == value {
            return;
        }
        self.pending[net as usize] = value;
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            net,
            value,
        }));
    }

    fn eval_cell(&mut self, idx: u32) {
        let i = idx as usize;
        let t = self.time_ps;
        // Split borrows: clone the (small) model description handle.
        let model = self.cells[i].model.clone();
        match model {
            Model::Comb { outs } => {
                for (expr, op) in &outs {
                    let v = expr.eval(&self.net_values, Lv::X);
                    self.schedule(op.net, v, t + op.delay_ps);
                }
            }
            Model::Ff {
                clk,
                next,
                clear,
                preset,
                q,
                qn,
            } => {
                let c = self.net_values[clk as usize];
                // X→1 counts as a rising edge (first clock after power-up).
                let rising = self.cells[i].last_clk != Lv::One && c == Lv::One;
                self.cells[i].last_clk = c;
                let clear_on = clear
                    .as_ref()
                    .map(|e| e.eval(&self.net_values, self.cells[i].state) == Lv::One)
                    .unwrap_or(false);
                let preset_on = preset
                    .as_ref()
                    .map(|e| e.eval(&self.net_values, self.cells[i].state) == Lv::One)
                    .unwrap_or(false);
                let mut new_state = self.cells[i].state;
                if clear_on {
                    new_state = Lv::Zero;
                } else if preset_on {
                    new_state = Lv::One;
                } else if rising {
                    new_state = next.eval(&self.net_values, self.cells[i].state);
                    if let Some(slot) = self.cells[i].capture_slot {
                        self.captures.record(slot, t, new_state);
                    }
                }
                if new_state != self.cells[i].state || rising {
                    self.cells[i].state = new_state;
                    if let Some(q) = q {
                        self.schedule(q.net, new_state, t + q.delay_ps);
                    }
                    if let Some(qn) = qn {
                        self.schedule(qn.net, !new_state, t + qn.delay_ps);
                    }
                }
            }
            Model::Latch {
                en,
                data,
                clear,
                preset,
                q,
                qn,
            } => {
                let e = self.net_values[en as usize];
                let falling = self.cells[i].last_clk == Lv::One && e != Lv::One;
                self.cells[i].last_clk = e;
                let clear_on = clear
                    .as_ref()
                    .map(|x| x.eval(&self.net_values, self.cells[i].state) == Lv::One)
                    .unwrap_or(false);
                let preset_on = preset
                    .as_ref()
                    .map(|x| x.eval(&self.net_values, self.cells[i].state) == Lv::One)
                    .unwrap_or(false);
                let mut new_state = self.cells[i].state;
                if clear_on {
                    new_state = Lv::Zero;
                } else if preset_on {
                    new_state = Lv::One;
                } else if e == Lv::One {
                    new_state = data.eval(&self.net_values, self.cells[i].state);
                }
                if falling {
                    // Capture: the value being held as the latch closes.
                    if let Some(slot) = self.cells[i].capture_slot {
                        self.captures.record(slot, t, new_state);
                    }
                }
                if new_state != self.cells[i].state {
                    self.cells[i].state = new_state;
                    if let Some(q) = q {
                        self.schedule(q.net, new_state, t + q.delay_ps);
                    }
                    if let Some(qn) = qn {
                        self.schedule(qn.net, !new_state, t + qn.delay_ps);
                    }
                }
            }
            Model::CElement {
                ins,
                reset,
                set,
                out,
            } => {
                let state = self.cells[i].state;
                let mut new_state = state;
                let reset_on = reset
                    .map(|r| self.net_values[r as usize] == Lv::Zero)
                    .unwrap_or(false);
                let set_on = set
                    .map(|s| self.net_values[s as usize] == Lv::Zero)
                    .unwrap_or(false);
                if reset_on {
                    new_state = Lv::Zero;
                } else if set_on {
                    new_state = Lv::One;
                } else {
                    let all_one = ins.iter().all(|&n| self.net_values[n as usize] == Lv::One);
                    let all_zero = ins.iter().all(|&n| self.net_values[n as usize] == Lv::Zero);
                    if all_one {
                        new_state = Lv::One;
                    } else if all_zero {
                        new_state = Lv::Zero;
                    }
                }
                if new_state != state {
                    self.cells[i].state = new_state;
                    self.schedule(out.net, new_state, t + out.delay_ps);
                }
            }
        }
    }

    /// The capture log of all sequential elements.
    pub fn captures(&self) -> &CaptureLog {
        &self.captures
    }

    /// Total toggles observed on a net.
    ///
    /// # Errors
    /// Returns [`SimError::UnknownNet`] for unknown names.
    pub fn toggle_count(&self, net: &str) -> Result<u64, SimError> {
        Ok(self.toggles[self.net_index(net)? as usize])
    }

    /// Resets the power-measurement window to start now.
    pub fn reset_power_window(&mut self) {
        self.window_start_ps = self.time_ps;
        self.toggles.iter_mut().for_each(|t| *t = 0);
    }

    /// Computes the power report for the current window (see
    /// [`crate::PowerReport`]).
    pub fn power_report(&self) -> crate::PowerReport {
        crate::power::compute(
            &self.toggles,
            &self.driver,
            &self.cells.iter().map(|c| c.energy).collect::<Vec<_>>(),
            self.cells.iter().map(|c| c.leakage).sum::<f64>(),
            self.corner,
            (self.time_ps - self.window_start_ps) as f64 / PS_PER_NS,
        )
    }

    /// Number of simulated cells (after flattening).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Names of all simulated cell instances (after flattening), mainly
    /// for diagnostics.
    pub fn cell_names(&self) -> impl Iterator<Item = &str> {
        self.cells.iter().map(|c| c.name.as_str())
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_values.len()
    }
}

fn compile_expr(expr: &Expr, bind: &HashMap<&str, Conn>, state_var: &str) -> CExpr {
    match expr {
        Expr::Var(v) if v == state_var => CExpr::State,
        Expr::Var(v) => match bind.get(v.as_str()) {
            Some(Conn::Net(n)) => CExpr::Net(n.index() as u32),
            Some(Conn::Const0) => CExpr::Const(Lv::Zero),
            Some(Conn::Const1) => CExpr::Const(Lv::One),
            _ => CExpr::Const(Lv::X),
        },
        Expr::Const(b) => CExpr::Const(Lv::from_bool(*b)),
        Expr::Not(e) => CExpr::Not(Box::new(compile_expr(e, bind, state_var))),
        Expr::And(es) => CExpr::And(
            es.iter()
                .map(|e| compile_expr(e, bind, state_var))
                .collect(),
        ),
        Expr::Or(es) => CExpr::Or(
            es.iter()
                .map(|e| compile_expr(e, bind, state_var))
                .collect(),
        ),
        Expr::Xor(a, b) => CExpr::Xor(
            Box::new(compile_expr(a, bind, state_var)),
            Box::new(compile_expr(b, bind, state_var)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::vlib90;
    use drd_netlist::Design;

    fn build(f: impl FnOnce(&mut Module)) -> Design {
        let mut d = Design::new();
        let id = d.add_module("t");
        f(d.module_mut(id));
        d
    }

    fn sim(design: &Design) -> Simulator {
        Simulator::new(design, &vlib90::high_speed(), SimOptions::default()).unwrap()
    }

    #[test]
    fn combinational_chain_propagates() {
        let d = build(|m| {
            m.add_port("a", PortDir::Input).unwrap();
            m.add_port("b", PortDir::Input).unwrap();
            m.add_port("z", PortDir::Output).unwrap();
            let a = m.find_net("a").unwrap();
            let b = m.find_net("b").unwrap();
            let z = m.find_net("z").unwrap();
            let n = m.add_net("n").unwrap();
            m.add_cell(
                "g1",
                "NAND2X1",
                &[("A", Conn::Net(a)), ("B", Conn::Net(b)), ("Z", Conn::Net(n))],
            )
            .unwrap();
            m.add_cell("g2", "INVX1", &[("A", Conn::Net(n)), ("Z", Conn::Net(z))])
                .unwrap();
        });
        let mut s = sim(&d);
        s.poke("a", Lv::One).unwrap();
        s.poke("b", Lv::One).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("z").unwrap(), Lv::One);
        s.poke("b", Lv::Zero).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("z").unwrap(), Lv::Zero);
    }

    #[test]
    fn dff_samples_on_rising_edge() {
        let d = build(|m| {
            m.add_port("d", PortDir::Input).unwrap();
            m.add_port("clk", PortDir::Input).unwrap();
            m.add_port("q", PortDir::Output).unwrap();
            let dn = m.find_net("d").unwrap();
            let clk = m.find_net("clk").unwrap();
            let q = m.find_net("q").unwrap();
            m.add_cell(
                "r",
                "DFFX1",
                &[("D", Conn::Net(dn)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(q))],
            )
            .unwrap();
        });
        let mut s = sim(&d);
        s.poke("clk", Lv::Zero).unwrap();
        s.poke("d", Lv::One).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("q").unwrap(), Lv::Zero, "init state");
        s.poke("clk", Lv::One).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("q").unwrap(), Lv::One, "captured on edge");
        // D change without an edge does not propagate.
        s.poke("d", Lv::Zero).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("q").unwrap(), Lv::One);
        // Capture log recorded one event with value One.
        let log = s.captures();
        let seq = log.sequence("r").unwrap();
        assert_eq!(seq, vec![Lv::One]);
    }

    #[test]
    fn latch_is_transparent_while_enabled() {
        let d = build(|m| {
            m.add_port("d", PortDir::Input).unwrap();
            m.add_port("g", PortDir::Input).unwrap();
            m.add_port("q", PortDir::Output).unwrap();
            let dn = m.find_net("d").unwrap();
            let g = m.find_net("g").unwrap();
            let q = m.find_net("q").unwrap();
            m.add_cell(
                "l",
                "LDX1",
                &[("D", Conn::Net(dn)), ("G", Conn::Net(g)), ("Q", Conn::Net(q))],
            )
            .unwrap();
        });
        let mut s = sim(&d);
        s.poke("g", Lv::One).unwrap();
        s.poke("d", Lv::One).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("q").unwrap(), Lv::One);
        s.poke("d", Lv::Zero).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("q").unwrap(), Lv::Zero, "transparent");
        s.poke("g", Lv::Zero).unwrap();
        s.run_for(0.5);
        s.poke("d", Lv::One).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("q").unwrap(), Lv::Zero, "opaque holds");
        // One capture at the falling enable, holding 0.
        assert_eq!(s.captures().sequence("l").unwrap(), vec![Lv::Zero]);
    }

    #[test]
    fn celement_rendezvous_semantics() {
        let d = build(|m| {
            m.add_port("a", PortDir::Input).unwrap();
            m.add_port("b", PortDir::Input).unwrap();
            m.add_port("rn", PortDir::Input).unwrap();
            m.add_port("z", PortDir::Output).unwrap();
            let a = m.find_net("a").unwrap();
            let b = m.find_net("b").unwrap();
            let rn = m.find_net("rn").unwrap();
            let z = m.find_net("z").unwrap();
            m.add_cell(
                "c",
                "C2RX1",
                &[
                    ("A", Conn::Net(a)),
                    ("B", Conn::Net(b)),
                    ("RN", Conn::Net(rn)),
                    ("Z", Conn::Net(z)),
                ],
            )
            .unwrap();
        });
        let mut s = sim(&d);
        // Reset drives output low.
        s.poke("rn", Lv::Zero).unwrap();
        s.poke("a", Lv::One).unwrap();
        s.poke("b", Lv::Zero).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("z").unwrap(), Lv::Zero);
        s.poke("rn", Lv::One).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("z").unwrap(), Lv::Zero, "holds after reset release");
        s.poke("b", Lv::One).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("z").unwrap(), Lv::One, "all inputs high");
        s.poke("a", Lv::Zero).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("z").unwrap(), Lv::One, "holds on mixed inputs");
        s.poke("b", Lv::Zero).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("z").unwrap(), Lv::Zero, "all inputs low");
    }

    #[test]
    fn ring_oscillator_oscillates_and_corner_scales_period() {
        let ring = |_: ()| {
            build(|m| {
                let n0 = m.add_net("n0").unwrap();
                let n1 = m.add_net("n1").unwrap();
                let n2 = m.add_net("n2").unwrap();
                let en = m.add_net("en").unwrap();
                // NAND-start ring so it self-starts once enabled.
                m.add_cell(
                    "g0",
                    "NAND2X1",
                    &[("A", Conn::Net(n2)), ("B", Conn::Net(en)), ("Z", Conn::Net(n0))],
                )
                .unwrap();
                m.add_cell("g1", "INVX1", &[("A", Conn::Net(n0)), ("Z", Conn::Net(n1))])
                    .unwrap();
                m.add_cell("g2", "INVX1", &[("A", Conn::Net(n1)), ("Z", Conn::Net(n2))])
                    .unwrap();
            })
        };
        let measure = |corner| {
            let d = ring(());
            let mut s = Simulator::new(&d, &vlib90::high_speed(), SimOptions::at_corner(corner))
                .unwrap();
            s.poke("en", Lv::One).unwrap();
            s.poke("n2", Lv::One).unwrap();
            s.watch("n0").unwrap();
            s.run_for(20.0);
            let edges = s.rising_edges("n0");
            assert!(edges.len() > 10, "oscillates: {} edges", edges.len());
            // Average period over the recorded edges.
            (edges[edges.len() - 1] - edges[1]) / (edges.len() - 2) as f64
        };
        let typical = measure(drd_liberty::Corner::typical());
        let worst = measure(drd_liberty::Corner::worst());
        assert!(worst > 1.3 * typical, "worst {worst} vs typical {typical}");
    }

    #[test]
    fn scan_ff_obeys_scan_enable() {
        let d = build(|m| {
            for p in ["d", "si", "se", "clk"] {
                m.add_port(p, PortDir::Input).unwrap();
            }
            m.add_port("q", PortDir::Output).unwrap();
            let pins = [
                ("D", Conn::Net(m.find_net("d").unwrap())),
                ("SI", Conn::Net(m.find_net("si").unwrap())),
                ("SE", Conn::Net(m.find_net("se").unwrap())),
                ("CK", Conn::Net(m.find_net("clk").unwrap())),
                ("Q", Conn::Net(m.find_net("q").unwrap())),
            ];
            m.add_cell("r", "SDFFX1", &pins).unwrap();
        });
        let mut s = sim(&d);
        s.poke("clk", Lv::Zero).unwrap();
        s.poke("d", Lv::Zero).unwrap();
        s.poke("si", Lv::One).unwrap();
        s.poke("se", Lv::One).unwrap();
        s.run_for(1.0);
        s.poke("clk", Lv::One).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("q").unwrap(), Lv::One, "scan path selected");
        s.poke("clk", Lv::Zero).unwrap();
        s.poke("se", Lv::Zero).unwrap();
        s.run_for(1.0);
        s.poke("clk", Lv::One).unwrap();
        s.run_for(1.0);
        assert_eq!(s.peek("q").unwrap(), Lv::Zero, "functional path selected");
    }

    #[test]
    fn intra_die_variation_changes_delays_not_function() {
        let d = build(|m| {
            m.add_port("a", PortDir::Input).unwrap();
            m.add_port("z", PortDir::Output).unwrap();
            let a = m.find_net("a").unwrap();
            let z = m.find_net("z").unwrap();
            let mut prev = a;
            for i in 0..8 {
                let next = if i == 7 { z } else { m.add_net(format!("n{i}")).unwrap() };
                m.add_cell(
                    format!("u{i}"),
                    "BUFX1",
                    &[("A", Conn::Net(prev)), ("Z", Conn::Net(next))],
                )
                .unwrap();
                prev = next;
            }
        });
        let opts = SimOptions::default().with_variation(0.08, 7);
        let mut s = Simulator::new(&d, &vlib90::high_speed(), opts).unwrap();
        s.poke("a", Lv::One).unwrap();
        s.run_for(2.0);
        assert_eq!(s.peek("z").unwrap(), Lv::One);
    }
}
