//! Deterministic timed event queue for handshake-level simulation.
//!
//! Time is integer **femtoseconds** (`u64`): floating-point times would
//! make heap ordering depend on rounding history, and byte-identical
//! Monte-Carlo artifacts across worker counts (the BENCH_variability
//! contract) demand a total order with no ties left to chance. Ties at
//! the same femtosecond are broken by the event id, which the queue
//! assigns in scheduling order — scheduling is itself deterministic, so
//! pop order is a pure function of the schedule calls.
//!
//! Stale-event cancellation is by versioning rather than heap surgery: a
//! node bumps its version when it schedules a newer transition, and the
//! simulator drops popped events whose version no longer matches. That
//! gives inertial-delay semantics (a pulse shorter than a gate's delay is
//! swallowed) without ever reordering or removing heap entries.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in femtoseconds.
pub type TimeFs = u64;

/// Femtoseconds per nanosecond.
pub const FS_PER_NS: f64 = 1.0e6;

/// Converts nanoseconds to femtoseconds, rounding to the nearest
/// femtosecond and flooring at 1 fs so every gate keeps positive delay
/// (zero-delay loops would livelock the queue).
pub fn ns_to_fs(ns: f64) -> TimeFs {
    let fs = (ns * FS_PER_NS).round();
    if fs < 1.0 {
        1
    } else if fs >= u64::MAX as f64 {
        u64::MAX
    } else {
        fs as TimeFs
    }
}

/// Converts femtoseconds back to nanoseconds (for reports only — all
/// queue arithmetic stays integral).
pub fn fs_to_ns(fs: TimeFs) -> f64 {
    fs as f64 / FS_PER_NS
}

/// One scheduled transition: node `node` changes to `value` at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Fire time (fs).
    pub time: TimeFs,
    /// Queue-assigned id: the (time, id) pair is the total order.
    pub id: u64,
    /// Target node index.
    pub node: usize,
    /// New value.
    pub value: bool,
    /// Node version at scheduling time; the simulator drops the event if
    /// the node has re-scheduled since.
    pub version: u32,
}

impl Ord for Event {
    fn cmp(&self, other: &Event) -> std::cmp::Ordering {
        // (time, id) only: ids are unique, so this is a total order and
        // the remaining fields never influence pop order.
        (self.time, self.id).cmp(&(other.time, other.id))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of [`Event`]s with stable `(time, event-id)` ordering.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_id: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules a transition and returns its id.
    pub fn schedule(&mut self, time: TimeFs, node: usize, value: bool, version: u32) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Reverse(Event { time, id, node, value, version }));
        id
    }

    /// Pops the earliest event (ties by id, i.e. scheduling order).
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Earliest pending fire time.
    pub fn peek_time(&self) -> Option<TimeFs> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events (including stale ones not yet dropped).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled.
    pub fn scheduled(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_id_tiebreak() {
        let mut q = EventQueue::new();
        q.schedule(30, 0, true, 0);
        q.schedule(10, 1, true, 0);
        q.schedule(10, 2, false, 0); // same time, later id
        q.schedule(20, 3, true, 0);
        let order: Vec<(TimeFs, usize)> =
            std::iter::from_fn(|| q.pop()).map(|e| (e.time, e.node)).collect();
        assert_eq!(order, vec![(10, 1), (10, 2), (20, 3), (30, 0)]);
    }

    #[test]
    fn same_time_ties_resolve_by_scheduling_order_not_node() {
        let mut q = EventQueue::new();
        // Schedule high node index first: it must still pop first.
        q.schedule(5, 9, true, 0);
        q.schedule(5, 1, true, 0);
        assert_eq!(q.pop().unwrap().node, 9);
        assert_eq!(q.pop().unwrap().node, 1);
    }

    #[test]
    fn ns_fs_round_trip_and_floor() {
        assert_eq!(ns_to_fs(1.0), 1_000_000);
        assert_eq!(ns_to_fs(0.0000004), 1, "sub-fs delays floor at 1 fs");
        assert_eq!(ns_to_fs(0.0), 1);
        let fs = ns_to_fs(2.375);
        assert!((fs_to_ns(fs) - 2.375).abs() < 1e-9);
    }

    #[test]
    fn bookkeeping() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(7, 0, true, 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.scheduled(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
