//! Property: for a random combinational netlist, the event-driven
//! simulator's steady state equals direct boolean evaluation.

use drd_check::{prop, Rng};
use drd_liberty::{vlib90, Lv};
use drd_netlist::{Conn, Design, Module, NetId, PortDir};
use drd_sim::{SimOptions, Simulator};

const INPUTS: usize = 4;

/// Builds a random DAG of library gates over 4 primary inputs; returns the
/// design and, per created net, a closure-free recipe to evaluate it.
fn build(recipe: &[u8]) -> (Design, Vec<(u8, usize, usize)>) {
    let mut m = Module::new("t");
    let mut nets: Vec<NetId> = (0..INPUTS)
        .map(|i| {
            let p = m.add_port(format!("i{i}"), PortDir::Input).unwrap();
            m.port(p).net
        })
        .collect();
    let mut ops = Vec::new();
    for (k, &b) in recipe.iter().enumerate() {
        let a = (b as usize) % nets.len();
        let c = (b as usize / 7) % nets.len();
        let kind = b % 5;
        let z = m.add_net(format!("n{k}")).unwrap();
        let gate = match kind {
            0 => "INVX1",
            1 => "NAND2X1",
            2 => "NOR2X1",
            3 => "XOR2X1",
            _ => "AND2X1",
        };
        if kind == 0 {
            m.add_cell(
                format!("u{k}"),
                gate,
                &[("A", Conn::Net(nets[a])), ("Z", Conn::Net(z))],
            )
            .unwrap();
        } else {
            m.add_cell(
                format!("u{k}"),
                gate,
                &[("A", Conn::Net(nets[a])), ("B", Conn::Net(nets[c])), ("Z", Conn::Net(z))],
            )
            .unwrap();
        }
        ops.push((kind, a, c));
        nets.push(z);
    }
    let mut d = Design::new();
    d.insert(m);
    (d, ops)
}

fn reference(ops: &[(u8, usize, usize)], inputs: u8) -> Vec<bool> {
    let mut vals: Vec<bool> = (0..INPUTS).map(|i| (inputs >> i) & 1 == 1).collect();
    for &(kind, a, c) in ops {
        let (x, y) = (vals[a], vals[c]);
        vals.push(match kind {
            0 => !x,
            1 => !(x && y),
            2 => !(x || y),
            3 => x ^ y,
            _ => x && y,
        });
    }
    vals
}

#[test]
fn simulation_matches_boolean_evaluation() {
    let lib = vlib90::high_speed();
    prop(
        48,
        |rng: &mut Rng| {
            let len = rng.range(1, 24);
            (rng.bytes(len), rng.below(16) as u8, rng.coin())
        },
        |(recipe, inputs, corner_worst): &(Vec<u8>, u8, bool)| {
            if recipe.is_empty() {
                return Ok(());
            }
            let (design, ops) = build(recipe);
            let corner = if *corner_worst {
                drd_liberty::Corner::worst()
            } else {
                drd_liberty::Corner::best()
            };
            let mut sim = Simulator::new(&design, &lib, SimOptions::at_corner(corner))
                .map_err(|e| format!("simulator: {e}"))?;
            for i in 0..INPUTS {
                sim.poke(&format!("i{i}"), Lv::from_bool((inputs >> i) & 1 == 1))
                    .map_err(|e| format!("poke: {e}"))?;
            }
            if !sim.run_until_quiet(1000.0) {
                return Err("combinational circuit does not settle".into());
            }
            let expect = reference(&ops, *inputs);
            for (k, &e) in expect.iter().enumerate().skip(INPUTS) {
                let net = format!("n{}", k - INPUTS);
                let got = sim.peek(&net).map_err(|err| format!("peek {net}: {err}"))?;
                if got != Lv::from_bool(e) {
                    return Err(format!("net {net}: sim {got:?}, reference {e}"));
                }
            }
            Ok(())
        },
    );
}
