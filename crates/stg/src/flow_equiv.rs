//! Executable flow-equivalence checking for latch-enable protocols.
//!
//! Flow equivalence (§2.1, [4], [7]) demands that "each individual
//! sequential element in the desynchronized circuit will possess the exact
//! same data sequence as its synchronous counterpart". This module checks
//! that property for a candidate two-latch protocol by *executing* it on a
//! symbolic latch pipeline and exploring **all** interleavings:
//!
//! * a pipeline of `n` transparent-high latches is composed by instantiating
//!   the protocol between every adjacent pair;
//! * the environment presents a fresh data item (0, 1, 2, …) every time the
//!   first latch opens;
//! * a transparent latch tracks its predecessor's item; an opaque latch
//!   holds the item it captured at its last falling enable;
//! * at every falling enable, the captured item index is recorded.
//!
//! The protocol is flow-equivalent iff every latch's captured sequence is
//! exactly `0, 1, 2, …` after a bounded start-up prefix of reset values —
//! a skip means data was overwritten before being captured (the
//! fall-decoupled failure of Fig. 2.4), a repeat means duplication.

use std::collections::HashSet;

use crate::{Polarity, Stg, StgError};

/// Outcome of a flow-equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowEquivalence {
    /// Every interleaving yields synchronous data sequences.
    Ok,
    /// Some interleaving loses or duplicates data.
    Violated {
        /// Human-readable description of the first violation found.
        reason: String,
    },
    /// The composed pipeline deadlocks (protocol not live).
    Deadlock,
}

impl FlowEquivalence {
    /// True for [`FlowEquivalence::Ok`].
    pub fn is_ok(&self) -> bool {
        *self == FlowEquivalence::Ok
    }
}

/// Composes `protocol` (over signals `A`, `B`) along an `stages`-latch
/// pipeline: signals `L0..L{stages-1}`, with the protocol instantiated for
/// every adjacent pair. Duplicate arcs are merged.
///
/// # Errors
/// Propagates [`StgError`] from arc construction (cannot happen for a
/// well-formed protocol).
pub fn compose_pipeline(protocol: &Stg, stages: usize) -> Result<Stg, StgError> {
    assert!(stages >= 2, "a pipeline needs at least two latches");
    let names: Vec<String> = (0..stages).map(|i| format!("L{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut composed = Stg::new(&name_refs);
    let proto_sigs = protocol.signals();
    assert_eq!(
        proto_sigs.len(),
        2,
        "protocol must be over exactly two signals"
    );
    let mut seen: HashSet<(String, String, u8)> = HashSet::new();
    for pair in 0..stages - 1 {
        for arc in protocol.arcs() {
            let (fs, fp) = protocol.signal_of(arc.from);
            let (ts, tp) = protocol.signal_of(arc.to);
            let rename = |sig: usize, pol: Polarity| -> String {
                format!("L{}{}", pair + sig, pol)
            };
            let from = rename(fs, fp);
            let to = rename(ts, tp);
            if seen.insert((from.clone(), to.clone(), arc.initial_tokens)) {
                composed.arc(&from, &to, arc.initial_tokens)?;
            }
        }
    }
    // Initial latch-enable values follow the protocol's A/B values.
    for i in 0..stages {
        let v = protocol.initial_values()[i % 2];
        composed.set_initial_value(&format!("L{i}"), v);
    }
    Ok(composed)
}

/// Checks flow equivalence of a two-signal protocol on an `stages`-latch
/// pipeline, exploring all interleavings up to `state_limit` states.
///
/// # Errors
/// Returns [`StgError::StateLimit`] if exploration exceeds `state_limit`.
pub fn check_flow_equivalence(
    protocol: &Stg,
    stages: usize,
    state_limit: usize,
) -> Result<FlowEquivalence, StgError> {
    let pipeline = compose_pipeline(protocol, stages)?;
    let n = stages;
    // Item index offset bound: pipeline occupancy can never sanely exceed
    // this; beyond it the protocol lets the input run away.
    let max_spread: i64 = (2 * n + 8) as i64;

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct State {
        marking: crate::Marking,
        values: Vec<bool>,
        /// Item currently visible at each latch output (relative to the
        /// normalization base); `None` is the latch's reset content.
        item: Vec<Option<i64>>,
        /// Next item index each latch is expected to capture (relative).
        captures: Vec<i64>,
        /// Next environment item (relative).
        next_input: i64,
    }

    let normalize = |s: &mut State| {
        let min = s
            .item
            .iter()
            .flatten()
            .chain(s.captures.iter())
            .chain(std::iter::once(&s.next_input))
            .copied()
            .min()
            .unwrap_or(0);
        for v in s.item.iter_mut().flatten() {
            *v -= min;
        }
        for v in s.captures.iter_mut() {
            *v -= min;
        }
        s.next_input -= min;
    };

    let mut init = State {
        marking: pipeline.initial_marking(),
        values: pipeline.initial_values().to_vec(),
        item: vec![None; n], // reset contents everywhere
        captures: vec![0; n], // next expected real capture is item 0
        next_input: 0,
    };
    normalize(&mut init);

    let mut visited: HashSet<State> = HashSet::new();
    visited.insert(init.clone());
    let mut stack = vec![init];
    while let Some(state) = stack.pop() {
        let enabled = pipeline.enabled(&state.marking);
        if enabled.is_empty() {
            return Ok(FlowEquivalence::Deadlock);
        }
        for t in enabled {
            let (sig, pol) = pipeline.signal_of(t);
            let mut next = state.clone();
            next.marking = pipeline.fire(&state.marking, t);
            match pol {
                Polarity::Plus => {
                    if next.values[sig] {
                        return Ok(FlowEquivalence::Violated {
                            reason: format!("signal L{sig} rises while already high"),
                        });
                    }
                    next.values[sig] = true;
                }
                Polarity::Minus => {
                    if !next.values[sig] {
                        return Ok(FlowEquivalence::Violated {
                            reason: format!("signal L{sig} falls while already low"),
                        });
                    }
                    next.values[sig] = false;
                }
            }
            // Data propagation: opening the first latch pulls a fresh item;
            // transparency cascades predecessor items forward.
            if pol == Polarity::Plus && sig == 0 {
                next.item[0] = Some(next.next_input);
                next.next_input += 1;
            }
            for i in 1..n {
                if next.values[i] {
                    next.item[i] = next.item[i - 1];
                }
            }
            // Capture check at a falling enable (reset contents are free).
            if pol == Polarity::Minus {
                if let Some(captured) = next.item[sig] {
                    match captured.cmp(&next.captures[sig]) {
                        std::cmp::Ordering::Less => {
                            return Ok(FlowEquivalence::Violated {
                                reason: format!(
                                    "latch L{sig} captured item {} twice (duplication)",
                                    captured - next.captures[sig]
                                ),
                            });
                        }
                        std::cmp::Ordering::Greater => {
                            return Ok(FlowEquivalence::Violated {
                                reason: format!(
                                    "latch L{sig} skipped {} item(s) (data overwriting)",
                                    captured - next.captures[sig]
                                ),
                            });
                        }
                        std::cmp::Ordering::Equal => {
                            next.captures[sig] = captured + 1;
                        }
                    }
                }
            }
            normalize(&mut next);
            let spread = next
                .item
                .iter()
                .flatten()
                .chain(next.captures.iter())
                .chain(std::iter::once(&next.next_input))
                .copied()
                .max()
                .unwrap_or(0);
            if spread > max_spread {
                return Ok(FlowEquivalence::Violated {
                    reason: "unbounded divergence between input and captures".into(),
                });
            }
            if visited.insert(next.clone()) {
                if visited.len() > state_limit {
                    return Err(StgError::StateLimit { limit: state_limit });
                }
                stack.push(next);
            }
        }
    }
    Ok(FlowEquivalence::Ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strictly sequential non-overlapping protocol — certainly correct.
    fn non_overlapping() -> Stg {
        let mut s = Stg::new(&["A", "B"]);
        s.arc("A+", "A-", 0).unwrap();
        s.arc("A-", "B+", 0).unwrap();
        s.arc("B+", "B-", 0).unwrap();
        s.arc("B-", "A+", 1).unwrap();
        s
    }

    /// Both latches transparent together with no capture ordering — data
    /// races through, overwriting earlier items.
    fn broken_concurrent() -> Stg {
        let mut s = Stg::new(&["A", "B"]);
        s.arc("A+", "A-", 0).unwrap();
        s.arc("A-", "A+", 1).unwrap();
        s.arc("B+", "B-", 0).unwrap();
        s.arc("B-", "B+", 1).unwrap();
        s
    }

    #[test]
    fn non_overlapping_is_flow_equivalent() {
        let fe = check_flow_equivalence(&non_overlapping(), 4, 1 << 20).unwrap();
        assert!(fe.is_ok(), "{fe:?}");
    }

    #[test]
    fn unsynchronized_latches_violate() {
        let fe = check_flow_equivalence(&broken_concurrent(), 3, 1 << 20).unwrap();
        assert!(matches!(fe, FlowEquivalence::Violated { .. }), "{fe:?}");
    }

    #[test]
    fn dead_protocol_reports_deadlock() {
        let mut s = Stg::new(&["A", "B"]);
        // No tokens anywhere: nothing can ever fire.
        s.arc("A+", "A-", 0).unwrap();
        s.arc("A-", "A+", 0).unwrap();
        s.arc("B+", "B-", 0).unwrap();
        s.arc("B-", "B+", 0).unwrap();
        let fe = check_flow_equivalence(&s, 3, 1 << 16).unwrap();
        assert_eq!(fe, FlowEquivalence::Deadlock);
    }

    #[test]
    fn composition_merges_duplicate_arcs() {
        let p = non_overlapping();
        let c = compose_pipeline(&p, 4).unwrap();
        // Each pair contributes 4 arcs; the A+→A- style self arcs of inner
        // latches appear in two pairs but must not be duplicated.
        assert!(c.arc_count() < 3 * p.arc_count());
    }
}
