//! # drd-stg — Signal Transition Graphs for desynchronization protocols
//!
//! STGs are "constrained PetriNets, which represent the signal dependencies
//! and sequence" (§2.2). This crate implements the subset needed by the
//! desynchronization methodology:
//!
//! * a safe marked-graph [`Stg`] model (places with a single producer and
//!   consumer, encoded as arcs carrying tokens),
//! * [`reach`]ability analysis: state counting, deadlock detection and
//!   marked-graph liveness (a marked graph is live iff every cycle carries
//!   a token),
//! * the executable [`flow_equiv`]alence check of the handshake-protocols
//!   papers: a protocol is usable for desynchronization iff every latch of
//!   a latch pipeline governed by it captures exactly the synchronous data
//!   sequence — no overwriting, no duplication (§2.2, Fig. 2.4),
//! * the concrete two-latch [`protocols`] of Fig. 2.4, ordered by allowed
//!   concurrency (reachable-state count 10/8/6/5/4), with the non-live and
//!   non-flow-equivalent outliers,
//! * [`conformance`] checking of event traces against an STG, used to
//!   verify the gate-level semi-decoupled controller implementation.
//!
//! ```
//! use drd_stg::protocols::Protocol;
//!
//! let stg = Protocol::SemiDecoupled.stg();
//! let reach = stg.reachability(1 << 16).expect("bounded");
//! assert_eq!(reach.state_count(), 6); // Fig. 2.4
//! ```

pub mod conformance;
pub mod flow_equiv;
pub mod protocols;
pub mod reach;
mod stg;

pub use stg::{Marking, Polarity, Stg, StgError, TransId};
