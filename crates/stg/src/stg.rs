//! Safe marked-graph STG model.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Rising or falling transition of a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// `sig+`
    Plus,
    /// `sig-`
    Minus,
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Polarity::Plus => "+",
            Polarity::Minus => "-",
        })
    }
}

/// Handle to a transition within an [`Stg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransId(pub(crate) u32);

/// Errors from STG construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StgError {
    /// An arc references an undeclared transition.
    UnknownTransition {
        /// The `sig+`/`sig-` label.
        label: String,
    },
    /// A transition was declared twice.
    DuplicateTransition {
        /// The `sig+`/`sig-` label.
        label: String,
    },
    /// Reachability exceeded the state limit (the net is unbounded or too
    /// concurrent for the given limit).
    StateLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A firing sequence violated signal alternation (e.g. `a+` fired while
    /// `a` was already high).
    Inconsistent {
        /// Description of the violating event.
        message: String,
    },
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::UnknownTransition { label } => write!(f, "unknown transition `{label}`"),
            StgError::DuplicateTransition { label } => {
                write!(f, "duplicate transition `{label}`")
            }
            StgError::StateLimit { limit } => {
                write!(f, "reachability exceeded {limit} states")
            }
            StgError::Inconsistent { message } => write!(f, "inconsistent STG: {message}"),
        }
    }
}

impl Error for StgError {}

#[derive(Debug, Clone)]
pub(crate) struct Transition {
    pub signal: u32,
    pub polarity: Polarity,
    /// Arcs (by index) this transition consumes from / produces into.
    pub consumes: Vec<u32>,
    pub produces: Vec<u32>,
}

#[derive(Debug, Clone)]
pub(crate) struct Arc {
    pub from: TransId,
    pub to: TransId,
    pub initial_tokens: u8,
}

/// A token marking: one token count per arc (safe nets carry 0 or 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Marking(pub(crate) Vec<u8>);

impl Marking {
    /// Total number of tokens.
    pub fn token_count(&self) -> usize {
        self.0.iter().map(|&t| t as usize).sum()
    }
}

/// A Signal Transition Graph restricted to marked graphs: every place has
/// exactly one producer and one consumer, so places are encoded as arcs
/// between transitions carrying an initial token count.
#[derive(Debug, Clone)]
pub struct Stg {
    signals: Vec<String>,
    transitions: Vec<Transition>,
    arcs: Vec<Arc>,
    labels: HashMap<String, TransId>,
    /// Initial binary value of each signal.
    initial_values: Vec<bool>,
}

impl Stg {
    /// Creates an STG with one `+` and one `-` transition per signal, all
    /// starting at value 0.
    pub fn new(signals: &[&str]) -> Stg {
        let mut stg = Stg {
            signals: signals.iter().map(|s| (*s).to_owned()).collect(),
            transitions: Vec::new(),
            arcs: Vec::new(),
            labels: HashMap::new(),
            initial_values: vec![false; signals.len()],
        };
        for (i, sig) in signals.iter().enumerate() {
            for pol in [Polarity::Plus, Polarity::Minus] {
                let id = TransId(stg.transitions.len() as u32);
                stg.transitions.push(Transition {
                    signal: i as u32,
                    polarity: pol,
                    consumes: Vec::new(),
                    produces: Vec::new(),
                });
                stg.labels.insert(format!("{sig}{pol}"), id);
            }
        }
        stg
    }

    /// Sets the initial value of `signal`.
    ///
    /// # Panics
    /// Panics if `signal` is not declared.
    pub fn set_initial_value(&mut self, signal: &str, value: bool) {
        let i = self
            .signals
            .iter()
            .position(|s| s == signal)
            .expect("declared signal");
        self.initial_values[i] = value;
    }

    /// Adds an arc `from → to` (labels like `"a+"`, `"b-"`) carrying
    /// `tokens` initial tokens.
    ///
    /// # Errors
    /// Returns [`StgError::UnknownTransition`] for unknown labels.
    pub fn arc(&mut self, from: &str, to: &str, tokens: u8) -> Result<(), StgError> {
        let f = self.transition(from)?;
        let t = self.transition(to)?;
        let idx = self.arcs.len() as u32;
        self.arcs.push(Arc {
            from: f,
            to: t,
            initial_tokens: tokens,
        });
        self.transitions[f.0 as usize].produces.push(idx);
        self.transitions[t.0 as usize].consumes.push(idx);
        Ok(())
    }

    /// Looks a transition up by label (`"a+"`).
    ///
    /// # Errors
    /// Returns [`StgError::UnknownTransition`] for unknown labels.
    pub fn transition(&self, label: &str) -> Result<TransId, StgError> {
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| StgError::UnknownTransition {
                label: label.to_owned(),
            })
    }

    /// The label of a transition (`"a+"`).
    pub fn label(&self, t: TransId) -> String {
        let tr = &self.transitions[t.0 as usize];
        format!("{}{}", self.signals[tr.signal as usize], tr.polarity)
    }

    /// The signal index and polarity of a transition.
    pub fn signal_of(&self, t: TransId) -> (usize, Polarity) {
        let tr = &self.transitions[t.0 as usize];
        (tr.signal as usize, tr.polarity)
    }

    /// Declared signal names.
    pub fn signals(&self) -> &[String] {
        &self.signals
    }

    /// Initial signal values.
    pub fn initial_values(&self) -> &[bool] {
        &self.initial_values
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Number of arcs (places).
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Marking {
        Marking(self.arcs.iter().map(|a| a.initial_tokens).collect())
    }

    /// Transitions enabled at `marking` (every input arc has a token, and
    /// the transition has at least one input arc — sourceless transitions
    /// would fire unboundedly).
    pub fn enabled(&self, marking: &Marking) -> Vec<TransId> {
        self.transitions
            .iter()
            .enumerate()
            .filter(|(_, tr)| {
                !tr.consumes.is_empty()
                    && tr.consumes.iter().all(|&a| marking.0[a as usize] > 0)
            })
            .map(|(i, _)| TransId(i as u32))
            .collect()
    }

    /// Fires `t` at `marking`, returning the successor marking.
    ///
    /// # Panics
    /// Panics if `t` is not enabled.
    pub fn fire(&self, marking: &Marking, t: TransId) -> Marking {
        let tr = &self.transitions[t.0 as usize];
        let mut next = marking.clone();
        for &a in &tr.consumes {
            assert!(next.0[a as usize] > 0, "transition not enabled");
            next.0[a as usize] -= 1;
        }
        for &a in &tr.produces {
            // Saturate: unbounded nets are reported by the safety check,
            // not by an arithmetic panic.
            next.0[a as usize] = next.0[a as usize].saturating_add(1);
        }
        next
    }

    pub(crate) fn arcs(&self) -> &[Arc] {
        &self.arcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring: a+ → a- → b+ → b- → a+ (token before a+).
    fn ring() -> Stg {
        let mut s = Stg::new(&["a", "b"]);
        s.arc("a+", "a-", 0).unwrap();
        s.arc("a-", "b+", 0).unwrap();
        s.arc("b+", "b-", 0).unwrap();
        s.arc("b-", "a+", 1).unwrap();
        s
    }

    #[test]
    fn firing_moves_token_around_ring() {
        let s = ring();
        let m0 = s.initial_marking();
        assert_eq!(m0.token_count(), 1);
        let enabled = s.enabled(&m0);
        assert_eq!(enabled.len(), 1);
        assert_eq!(s.label(enabled[0]), "a+");
        let m1 = s.fire(&m0, enabled[0]);
        assert_eq!(s.label(s.enabled(&m1)[0]), "a-");
        assert_eq!(m1.token_count(), 1);
    }

    #[test]
    fn labels_and_lookup() {
        let s = ring();
        let t = s.transition("b-").unwrap();
        assert_eq!(s.label(t), "b-");
        assert_eq!(s.signal_of(t), (1, Polarity::Minus));
        assert!(s.transition("c+").is_err());
    }

    #[test]
    #[should_panic = "not enabled"]
    fn firing_disabled_transition_panics() {
        let s = ring();
        let m0 = s.initial_marking();
        let bminus = s.transition("b-").unwrap();
        let _ = s.fire(&m0, bminus);
    }

    #[test]
    fn unconstrained_transition_is_not_enabled() {
        // `b+`/`b-` have no input arcs; they must not be spuriously enabled.
        let mut s = Stg::new(&["a", "b"]);
        s.arc("a+", "a-", 0).unwrap();
        s.arc("a-", "a+", 1).unwrap();
        let names: Vec<String> = s
            .enabled(&s.initial_marking())
            .into_iter()
            .map(|t| s.label(t))
            .collect();
        assert_eq!(names, ["a+"]);
    }

    #[test]
    fn initial_values() {
        let mut s = ring();
        assert_eq!(s.initial_values(), &[false, false]);
        s.set_initial_value("b", true);
        assert_eq!(s.initial_values(), &[false, true]);
    }
}
