//! Trace conformance against an STG specification.
//!
//! The semi-decoupled latch controller is a hand-mapped, hazard-free
//! circuit designed from an STG specification (§3.1.3 — the paper used
//! petrify). This module provides the mechanical check petrify's synthesis
//! guarantees would otherwise give us: an observed sequence of signal
//! edges (e.g. from simulating the gate-level controller) conforms to the
//! specification iff every edge is an enabled transition of the STG.

use std::error::Error;
use std::fmt;

use crate::{Marking, Polarity, Stg};

/// A conformance violation: an observed edge the STG does not allow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceError {
    /// Index of the offending event in the observed trace.
    pub at: usize,
    /// The offending event label (`"ro+"`).
    pub event: String,
    /// The transitions the specification allowed instead.
    pub allowed: Vec<String>,
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event #{} `{}` not allowed by specification (allowed: {})",
            self.at,
            self.event,
            self.allowed.join(", ")
        )
    }
}

impl Error for ConformanceError {}

/// Incremental conformance checker.
#[derive(Debug, Clone)]
pub struct Conformance<'a> {
    stg: &'a Stg,
    marking: Marking,
    observed: usize,
}

impl<'a> Conformance<'a> {
    /// Starts checking from the STG's initial marking.
    pub fn new(stg: &'a Stg) -> Self {
        Conformance {
            stg,
            marking: stg.initial_marking(),
            observed: 0,
        }
    }

    /// Number of events accepted so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Observes one signal edge.
    ///
    /// # Errors
    /// Returns [`ConformanceError`] if the edge is not enabled.
    pub fn observe(&mut self, signal: &str, rising: bool) -> Result<(), ConformanceError> {
        let pol = if rising { Polarity::Plus } else { Polarity::Minus };
        let label = format!("{signal}{pol}");
        let trans = self.stg.transition(&label).ok();
        let enabled = self.stg.enabled(&self.marking);
        match trans {
            Some(t) if enabled.contains(&t) => {
                self.marking = self.stg.fire(&self.marking, t);
                self.observed += 1;
                Ok(())
            }
            _ => Err(ConformanceError {
                at: self.observed,
                event: label,
                allowed: enabled.iter().map(|&t| self.stg.label(t)).collect(),
            }),
        }
    }

    /// Observes a whole trace of `(signal, rising)` edges.
    ///
    /// # Errors
    /// Returns the first [`ConformanceError`].
    pub fn observe_trace<'s>(
        &mut self,
        trace: impl IntoIterator<Item = (&'s str, bool)>,
    ) -> Result<(), ConformanceError> {
        for (signal, rising) in trace {
            self.observe(signal, rising)?;
        }
        Ok(())
    }
}

/// Convenience: checks a full trace against `stg` from its initial marking.
///
/// # Errors
/// Returns the first [`ConformanceError`].
pub fn check_trace<'s>(
    stg: &Stg,
    trace: impl IntoIterator<Item = (&'s str, bool)>,
) -> Result<usize, ConformanceError> {
    let mut c = Conformance::new(stg);
    c.observe_trace(trace)?;
    Ok(c.observed())
}

/// The STG of the 4-phase semi-decoupled latch controller *closed with its
/// environment* (Fig. 3.2 / Fig. 4.5 of the thesis; Furber & Day 1996).
///
/// Signals: `ri` (input request), `g` (the latch-enable capture pulse),
/// `ro` (output request) and `ao` (output acknowledge). The controller
/// implementation is two C-elements plus the pulse gate:
/// `a = C(ri, !ro)`, `ro = C(a, !ao)`, `g = a & !ro`, `ai = a`.
pub fn semi_decoupled_controller_stg() -> Stg {
    let mut s = Stg::new(&["ri", "g", "ro", "ao"]);
    let arcs: &[(&str, &str, u8)] = &[
        // The hidden a+ (= C(ri, !ro) rising) causes g+ and ro+
        // concurrently; the g pulse closes once ro is out.
        ("ri+", "g+", 0),
        ("ro-", "g+", 1),
        ("ri+", "ro+", 0),
        ("ao-", "ro+", 1),
        ("g+", "g-", 0),
        ("ro+", "g-", 0),
        // ro falls after the input request withdrew (hidden a-), the
        // successor acknowledged, and the pulse closed.
        ("ri-", "ro-", 0),
        ("ao+", "ro-", 0),
        ("g-", "ro-", 0),
        // Input environment: acknowledged at a+ (observed as g+).
        ("g+", "ri-", 0),
        ("ro-", "ri+", 1),
        // Output environment: ao follows ro.
        ("ro+", "ao+", 0),
        ("ro-", "ao-", 0),
    ];
    for (from, to, tokens) in arcs {
        s.arc(from, to, *tokens).expect("static labels are valid");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_stg_is_well_formed() {
        let s = semi_decoupled_controller_stg();
        s.check_consistency(1 << 14).unwrap();
        assert!(s.is_live());
        assert!(s.is_safe(1 << 14).unwrap());
        let reach = s.reachability(1 << 14).unwrap();
        assert!(reach.deadlocks().is_empty());
        // Small, tightly synchronized state space.
        assert!(reach.state_count() <= 32, "{}", reach.state_count());
    }

    #[test]
    fn canonical_cycle_conforms() {
        let s = semi_decoupled_controller_stg();
        // One full handshake cycle of the pulse-mode controller.
        let trace = [
            ("ri", true),
            ("ro", true),
            ("g", true),
            ("g", false),
            ("ri", false),
            ("ao", true),
            ("ro", false),
            ("ao", false),
            ("ri", true),
            ("ro", true),
        ];
        let n = check_trace(&s, trace).unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn premature_edge_is_rejected() {
        let s = semi_decoupled_controller_stg();
        let mut c = Conformance::new(&s);
        c.observe("ri", true).unwrap();
        // ao+ before ro+ violates the output handshake causality.
        let err = c.observe("ao", true).unwrap_err();
        assert_eq!(err.event, "ao+");
        assert!(err.allowed.contains(&"ro+".to_owned()));
        assert_eq!(c.observed(), 1);
    }

    #[test]
    fn unknown_signal_is_rejected() {
        let s = semi_decoupled_controller_stg();
        let mut c = Conformance::new(&s);
        assert!(c.observe("zz", true).is_err());
    }
}
