//! The two-latch handshake protocols of Fig. 2.4, ordered by concurrency.
//!
//! Each protocol is an STG over the enable signals `A` and `B` of two
//! consecutive latches (data flows A → B). Fig. 2.4 orders them by allowed
//! concurrency — measured as reachable-state count — and classifies them:
//!
//! | protocol                         | states | live | flow-equivalent |
//! |----------------------------------|--------|------|-----------------|
//! | de-synchronization model         | 10     | yes  | yes (see note)  |
//! | fully-decoupled / rise-decoupled | 8      | yes  | yes (see note)  |
//! | semi-decoupled                   | 6      | yes  | yes             |
//! | simple (Furber & Day)            | 5      | yes  | yes             |
//! | non-overlapping                  | 4      | yes  | yes             |
//! | fall-decoupled                   | —      | yes  | **no**          |
//!
//! The encodings below are *verified in-tree*: state counts by
//! [`Stg::reachability`], liveness by [`Stg::is_live`]. Flow equivalence
//! is verified by the executable pipeline check of [`crate::flow_equiv`]
//! for the three least concurrent protocols — including the one this flow
//! actually implements, semi-decoupled, chosen "as they have been shown to
//! exhibit a good tradeoff of signal concurrency and asynchronous circuit
//! complexity" (§2.2) — and the fall-decoupled counterexample.
//!
//! **Note on the two most concurrent models.** The executable checker
//! composes the *same* two-signal protocol across every adjacent latch
//! pair and explores all interleavings. That abstraction is conservative:
//! it admits pipelines more weakly synchronized than the full
//! desynchronization construction of [4] (where the proof tracks the
//! master/slave structure of each stage), and under it the two most
//! concurrent models admit a data-overwriting interleaving. Their flow
//! equivalence is established by the finer-grained proof in [4]; here we
//! verify their liveness, consistency, boundedness and the concurrency
//! ordering of Fig. 2.4, and [`Protocol::executable_fe`] records which
//! rows the executable check covers.

use crate::Stg;

/// The named protocols of Fig. 2.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Maximally concurrent flow-equivalent model (10 states).
    Desynchronization,
    /// Fully-decoupled (Furber & Day) / rise-decoupled (8 states).
    FullyDecoupled,
    /// Semi-decoupled (Furber & Day) — the one this flow implements
    /// (6 states).
    SemiDecoupled,
    /// Simple 4-phase (Furber & Day) (5 states).
    Simple,
    /// Strictly sequential non-overlapping enables (4 states).
    NonOverlapping,
    /// Fall-decoupled — live but **not** flow-equivalent: data can be
    /// overwritten before the slave captures it.
    FallDecoupled,
}

impl Protocol {
    /// All protocols, most concurrent first (the Fig. 2.4 ordering).
    pub const ALL: [Protocol; 6] = [
        Protocol::Desynchronization,
        Protocol::FullyDecoupled,
        Protocol::SemiDecoupled,
        Protocol::Simple,
        Protocol::NonOverlapping,
        Protocol::FallDecoupled,
    ];

    /// Display name matching the figure.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Desynchronization => "de-synchronization model",
            Protocol::FullyDecoupled => "fully-decoupled (Furber & Day)",
            Protocol::SemiDecoupled => "semi-decoupled (Furber & Day)",
            Protocol::Simple => "simple (Furber & Day)",
            Protocol::NonOverlapping => "non-overlapping",
            Protocol::FallDecoupled => "fall-decoupled",
        }
    }

    /// Expected reachable-state count from Fig. 2.4 (`None` for the
    /// non-flow-equivalent outlier, which the figure does not rank).
    pub fn expected_states(self) -> Option<usize> {
        match self {
            Protocol::Desynchronization => Some(10),
            Protocol::FullyDecoupled => Some(8),
            Protocol::SemiDecoupled => Some(6),
            Protocol::Simple => Some(5),
            Protocol::NonOverlapping => Some(4),
            Protocol::FallDecoupled => None,
        }
    }

    /// Whether Fig. 2.4 classifies this protocol as flow-equivalent.
    pub fn expected_flow_equivalent(self) -> bool {
        self != Protocol::FallDecoupled
    }

    /// Whether the executable pairwise pipeline check of
    /// [`crate::flow_equiv`] decides this protocol's flow equivalence
    /// (see the module-level note for the two most concurrent models).
    pub fn executable_fe(self) -> bool {
        matches!(
            self,
            Protocol::SemiDecoupled
                | Protocol::Simple
                | Protocol::NonOverlapping
                | Protocol::FallDecoupled
        )
    }

    /// Builds the protocol STG over signals `A` and `B` (both initially
    /// low: all latches opaque at reset).
    pub fn stg(self) -> Stg {
        let mut s = Stg::new(&["A", "B"]);
        let arcs: &[(&str, &str, u8)] = match self {
            // The maximally concurrent model: the semi-decoupled coupling
            // (A- ⇒ B- / B- ⇒ A+) with one extra token of slack, letting
            // the master run a full item ahead of the slave's capture.
            Protocol::Desynchronization => &[
                ("A+", "A-", 0),
                ("A-", "A+", 1),
                ("B+", "B-", 0),
                ("B-", "B+", 1),
                ("A-", "B-", 1),
                ("B-", "A+", 1),
            ],
            // Fully-decoupled removes the extra slack token: B- pairs with
            // the A+ of the same item, but A's and B's cycles otherwise
            // run decoupled.
            Protocol::FullyDecoupled => &[
                ("A+", "A-", 0),
                ("A-", "A+", 1),
                ("B+", "B-", 0),
                ("B-", "B+", 1),
                ("A+", "B-", 0),
                ("B-", "A+", 1),
            ],
            // Semi-decoupled: the slave's falling edge additionally waits
            // for the master to have closed (A- ⇒ B-), removing the
            // master-reopen/slave-close race the controller would
            // otherwise have to arbitrate.
            Protocol::SemiDecoupled => &[
                ("A+", "A-", 0),
                ("A-", "A+", 1),
                ("B+", "B-", 0),
                ("B-", "B+", 1),
                ("A-", "B-", 0),
                ("B-", "A+", 1),
            ],
            // Simple: interlocked 4-phase handshake — B rises only after A
            // rose, A falls only after B rose, A re-rises only after B
            // fell. One residual concurrency (B- vs A's cycle) gives the
            // fifth state.
            Protocol::Simple => &[
                ("A+", "A-", 0),
                ("A-", "A+", 1),
                ("B+", "B-", 0),
                ("B-", "B+", 1),
                ("A+", "B+", 0),
                ("B+", "A-", 0),
                ("B-", "A+", 1),
            ],
            // Non-overlapping: strict sequence A+ A- B+ B-.
            Protocol::NonOverlapping => &[
                ("A+", "A-", 0),
                ("A-", "B+", 0),
                ("B+", "B-", 0),
                ("B-", "A+", 1),
            ],
            // Fall-decoupled: B's fall is decoupled from A's state — B can
            // close long after A reopened with new data, so items can race
            // through B untapped (data overwriting ⇒ not flow-equivalent).
            Protocol::FallDecoupled => &[
                ("A+", "A-", 0),
                ("A-", "A+", 1),
                ("B+", "B-", 0),
                ("B-", "B+", 1),
                ("A+", "B+", 0),
                ("B+", "A+", 1),
            ],
        };
        for (from, to, tokens) in arcs {
            s.arc(from, to, *tokens).expect("static labels are valid");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_equiv::{check_flow_equivalence, FlowEquivalence};

    #[test]
    fn all_protocols_are_consistent_and_bounded() {
        for p in Protocol::ALL {
            let stg = p.stg();
            stg.check_consistency(1 << 12)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            // All protocols are bounded; all but the maximally concurrent
            // model (whose slack pair forms a capacity-2 place) are safe.
            if p == Protocol::Desynchronization {
                assert!(stg.reachability(1 << 12).is_ok());
            } else {
                assert!(
                    stg.is_safe(1 << 12).unwrap(),
                    "{} should be a safe net",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn all_protocols_are_live() {
        for p in Protocol::ALL {
            assert!(p.stg().is_live(), "{} should be live", p.name());
            let reach = p.stg().reachability(1 << 12).unwrap();
            assert!(
                reach.deadlocks().is_empty(),
                "{} should be deadlock-free",
                p.name()
            );
        }
    }

    #[test]
    fn state_counts_match_figure_2_4() {
        for p in Protocol::ALL {
            if let Some(expected) = p.expected_states() {
                let count = p.stg().reachability(1 << 12).unwrap().state_count();
                assert_eq!(count, expected, "{}", p.name());
            }
        }
    }

    #[test]
    fn concurrency_strictly_decreases_down_the_figure() {
        let counts: Vec<usize> = Protocol::ALL
            .iter()
            .filter_map(|p| p.expected_states())
            .collect();
        for w in counts.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn flow_equivalence_classification_matches_figure_2_4() {
        for p in Protocol::ALL.into_iter().filter(|p| p.executable_fe()) {
            let fe = check_flow_equivalence(&p.stg(), 4, 1 << 22).unwrap();
            if p.expected_flow_equivalent() {
                assert!(fe.is_ok(), "{} should be flow-equivalent: {fe:?}", p.name());
            } else {
                assert!(
                    matches!(fe, FlowEquivalence::Violated { .. }),
                    "{} should violate flow equivalence: {fe:?}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn pairwise_check_is_conservative_for_most_concurrent_models() {
        // Documented behaviour (module-level note): the pairwise pipeline
        // abstraction rejects the two most concurrent models even though
        // the full desynchronization construction of [4] proves them FE.
        for p in [Protocol::Desynchronization, Protocol::FullyDecoupled] {
            let fe = check_flow_equivalence(&p.stg(), 4, 1 << 22).unwrap();
            assert!(
                matches!(fe, FlowEquivalence::Violated { .. }),
                "{}: {fe:?}",
                p.name()
            );
        }
    }
}
