//! Reachability analysis: state graphs, deadlocks, liveness, safety.

use std::collections::HashMap;

use crate::{Marking, Stg, StgError, TransId};

/// The reachability (state) graph of an STG.
#[derive(Debug, Clone)]
pub struct ReachGraph {
    states: Vec<Marking>,
    /// Edges as `(from-state, transition, to-state)`.
    edges: Vec<(usize, TransId, usize)>,
}

impl ReachGraph {
    /// Number of reachable markings — the concurrency measure of Fig. 2.4.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The reachable markings.
    pub fn states(&self) -> &[Marking] {
        &self.states
    }

    /// Edges as `(from-state, transition, to-state)`.
    pub fn edges(&self) -> &[(usize, TransId, usize)] {
        &self.edges
    }

    /// States with no enabled transition.
    pub fn deadlocks(&self) -> Vec<usize> {
        let mut has_out = vec![false; self.states.len()];
        for &(from, _, _) in &self.edges {
            has_out[from] = true;
        }
        (0..self.states.len()).filter(|&i| !has_out[i]).collect()
    }
}

impl Stg {
    /// Explores the reachable markings (BFS), up to `limit` states.
    ///
    /// # Errors
    /// Returns [`StgError::StateLimit`] if more than `limit` states are
    /// reachable (unbounded or overly concurrent nets).
    pub fn reachability(&self, limit: usize) -> Result<ReachGraph, StgError> {
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut states = Vec::new();
        let mut edges = Vec::new();
        let m0 = self.initial_marking();
        index.insert(m0.clone(), 0);
        states.push(m0);
        let mut frontier = vec![0usize];
        while let Some(s) = frontier.pop() {
            let marking = states[s].clone();
            for t in self.enabled(&marking) {
                let next = self.fire(&marking, t);
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = states.len();
                        if id >= limit {
                            return Err(StgError::StateLimit { limit });
                        }
                        index.insert(next.clone(), id);
                        states.push(next);
                        frontier.push(id);
                        id
                    }
                };
                edges.push((s, t, id));
            }
        }
        Ok(ReachGraph { states, edges })
    }

    /// Marked-graph liveness: live iff every directed cycle carries at
    /// least one token (checked as: the token-free sub-graph is acyclic)
    /// and every transition lies on some cycle (otherwise it fires only
    /// finitely often).
    pub fn is_live(&self) -> bool {
        // 1. Token-free subgraph must be acyclic.
        let n = self.transition_count();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for arc in self.arcs() {
            if arc.initial_tokens == 0 {
                adj[arc.from.0 as usize].push(arc.to.0 as usize);
            }
        }
        if has_cycle(&adj) {
            return false;
        }
        // 2. Every connected transition must be able to fire repeatedly:
        // in a marked graph this requires each transition to have both
        // producers and consumers (closed under the flow relation).
        for tr in 0..n {
            let t = TransId(tr as u32);
            let has_in = self.arcs().iter().any(|a| a.to == t);
            let has_out = self.arcs().iter().any(|a| a.from == t);
            if has_in != has_out {
                return false;
            }
        }
        true
    }

    /// Safety: no reachable marking puts more than one token on a place.
    /// Stops exploring as soon as a 2-token place is found, so unbounded
    /// nets are classified as unsafe without exhausting the state limit.
    ///
    /// # Errors
    /// Propagates [`StgError::StateLimit`] from reachability of a safe net.
    pub fn is_safe(&self, limit: usize) -> Result<bool, StgError> {
        let mut index = std::collections::HashSet::new();
        let m0 = self.initial_marking();
        if m0.0.iter().any(|&t| t > 1) {
            return Ok(false);
        }
        index.insert(m0.clone());
        let mut frontier = vec![m0];
        while let Some(marking) = frontier.pop() {
            for t in self.enabled(&marking) {
                let next = self.fire(&marking, t);
                if next.0.iter().any(|&tokens| tokens > 1) {
                    return Ok(false);
                }
                if index.insert(next.clone()) {
                    if index.len() > limit {
                        return Err(StgError::StateLimit { limit });
                    }
                    frontier.push(next);
                }
            }
        }
        Ok(true)
    }

    /// Consistency: along every reachable firing, each signal alternates
    /// `+`/`-` starting from its initial value.
    ///
    /// # Errors
    /// Propagates [`StgError::StateLimit`]; returns
    /// [`StgError::Inconsistent`] describing the first violation.
    pub fn check_consistency(&self, limit: usize) -> Result<(), StgError> {
        // Track signal values per reachable marking; they must be a
        // function of the marking.
        let reach = self.reachability(limit)?;
        let mut values: Vec<Option<Vec<bool>>> = vec![None; reach.state_count()];
        values[0] = Some(self.initial_values().to_vec());
        // Fixed-point propagation over edges (the graph may be cyclic).
        let mut changed = true;
        while changed {
            changed = false;
            for &(from, t, to) in reach.edges() {
                let Some(v) = values[from].clone() else { continue };
                let (sig, pol) = self.signal_of(t);
                let expected_pre = matches!(pol, crate::Polarity::Minus);
                if v[sig] != expected_pre {
                    return Err(StgError::Inconsistent {
                        message: format!(
                            "transition `{}` fires while signal already {}",
                            self.label(t),
                            if v[sig] { "high" } else { "low" }
                        ),
                    });
                }
                let mut next = v;
                next[sig] = !expected_pre;
                match &values[to] {
                    None => {
                        values[to] = Some(next);
                        changed = true;
                    }
                    Some(existing) => {
                        if existing != &next {
                            return Err(StgError::Inconsistent {
                                message: format!(
                                    "marking reached with two different values via `{}`",
                                    self.label(t)
                                ),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn has_cycle(adj: &[Vec<usize>]) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum C {
        W,
        G,
        B,
    }
    let n = adj.len();
    let mut color = vec![C::W; n];
    for root in 0..n {
        if color[root] != C::W {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        color[root] = C::G;
        while let Some(&(node, pos)) = stack.last() {
            if pos < adj[node].len() {
                let next = adj[node][pos];
                stack.last_mut().expect("non-empty").1 += 1;
                match color[next] {
                    C::W => {
                        color[next] = C::G;
                        stack.push((next, 0));
                    }
                    C::G => return true,
                    C::B => {}
                }
            } else {
                color[node] = C::B;
                stack.pop();
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Stg {
        let mut s = Stg::new(&["a", "b"]);
        s.arc("a+", "a-", 0).unwrap();
        s.arc("a-", "b+", 0).unwrap();
        s.arc("b+", "b-", 0).unwrap();
        s.arc("b-", "a+", 1).unwrap();
        s
    }

    #[test]
    fn ring_has_four_states_and_no_deadlock() {
        let r = ring().reachability(100).unwrap();
        assert_eq!(r.state_count(), 4);
        assert!(r.deadlocks().is_empty());
    }

    #[test]
    fn tokenless_ring_is_dead() {
        let mut s = Stg::new(&["a"]);
        s.arc("a+", "a-", 0).unwrap();
        s.arc("a-", "a+", 0).unwrap();
        assert!(!s.is_live());
        let r = s.reachability(10).unwrap();
        assert_eq!(r.state_count(), 1);
        assert_eq!(r.deadlocks(), vec![0]);
    }

    #[test]
    fn live_ring() {
        assert!(ring().is_live());
    }

    #[test]
    fn safety_detects_unsafe_nets() {
        // Two tokens feeding one consumer arc chain can accumulate.
        let mut s = Stg::new(&["a", "b"]);
        s.arc("a+", "a-", 1).unwrap();
        s.arc("a-", "a+", 0).unwrap();
        s.arc("a+", "b+", 0).unwrap(); // b+ consumes slower than a produces? b+ also needs b-…
        s.arc("b+", "b-", 0).unwrap();
        s.arc("b-", "b+", 1).unwrap();
        // a+ → b+ place can accumulate: a can cycle without b consuming.
        assert!(!s.is_safe(10_000).unwrap());
    }

    #[test]
    fn consistency_of_ring() {
        ring().check_consistency(100).unwrap();
    }

    #[test]
    fn inconsistent_net_detected() {
        // a+ twice in a row: a+ → a+ is impossible to express directly with
        // one transition per edge, so build a net where `a+` refires
        // without `a-`: ring a+ → b+ → a+.
        let mut s = Stg::new(&["a", "b"]);
        s.arc("a+", "b+", 1).unwrap();
        s.arc("b+", "a+", 0).unwrap();
        // note: token placement means a+ fires, then b+, then a+ again…
        let r = s.check_consistency(100);
        assert!(matches!(r, Err(StgError::Inconsistent { .. })), "{r:?}");
    }

    #[test]
    fn state_limit_enforced() {
        let s = ring();
        assert!(matches!(
            s.reachability(2),
            Err(StgError::StateLimit { limit: 2 })
        ));
    }
}
