//! Negative coverage for the executable flow-equivalence check (§2.2,
//! Fig. 2.4): protocols that must be *rejected* are rejected for the
//! right reason.

use drd_stg::flow_equiv::{check_flow_equivalence, FlowEquivalence};
use drd_stg::protocols::Protocol;
use drd_stg::Stg;

/// The fall-decoupled protocol of Fig. 2.4 allows a latch to re-open
/// before its successor captured — the check must exhibit an overwriting
/// interleaving, not merely fail to verify.
#[test]
fn fall_decoupled_is_reported_violated() {
    let stg = Protocol::FallDecoupled.stg();
    let fe = check_flow_equivalence(&stg, 4, 1 << 22).expect("bounded exploration");
    match fe {
        FlowEquivalence::Violated { reason } => {
            assert!(!reason.is_empty(), "violation carries a diagnostic");
        }
        other => panic!("fall-decoupled must violate flow equivalence, got {other:?}"),
    }
}

/// Fall-decoupled stays violated on longer pipelines too (the overwrite
/// is a local property of adjacent latch pairs).
#[test]
fn fall_decoupled_violates_on_longer_pipelines() {
    let stg = Protocol::FallDecoupled.stg();
    for stages in [3usize, 5] {
        let fe = check_flow_equivalence(&stg, stages, 1 << 22).expect("bounded exploration");
        assert!(
            matches!(fe, FlowEquivalence::Violated { .. }),
            "{stages}-stage pipeline: {fe:?}"
        );
    }
}

/// A token-free handshake net can never fire a transition: the composed
/// pipeline must be reported `Deadlock`, not `Ok` (vacuous traversal) and
/// not `Violated`.
#[test]
fn non_live_protocol_is_reported_deadlock() {
    let mut s = Stg::new(&["A", "B"]);
    s.arc("A+", "A-", 0).unwrap();
    s.arc("A-", "A+", 0).unwrap();
    s.arc("B+", "B-", 0).unwrap();
    s.arc("B-", "B+", 0).unwrap();
    let fe = check_flow_equivalence(&s, 4, 1 << 16).expect("bounded exploration");
    assert_eq!(fe, FlowEquivalence::Deadlock);
}

/// A protocol that starves one side (B can never fire because its only
/// token sits on a cycle A never releases into) also deadlocks rather
/// than passing vacuously.
#[test]
fn half_starved_protocol_is_reported_deadlock() {
    let mut s = Stg::new(&["A", "B"]);
    // A and B wait on each other with no initial token anywhere on the
    // cross arcs: classic circular wait.
    s.arc("A+", "B+", 0).unwrap();
    s.arc("B+", "A-", 0).unwrap();
    s.arc("A-", "B-", 0).unwrap();
    s.arc("B-", "A+", 0).unwrap();
    let fe = check_flow_equivalence(&s, 3, 1 << 16).expect("bounded exploration");
    assert_eq!(fe, FlowEquivalence::Deadlock);
}

/// Sanity: the protocol this flow actually implements stays machine-
/// checked `Ok`, so the negative tests above are discriminating.
#[test]
fn semi_decoupled_remains_flow_equivalent() {
    let fe = check_flow_equivalence(&Protocol::SemiDecoupled.stg(), 4, 1 << 22)
        .expect("bounded exploration");
    assert!(fe.is_ok(), "{fe:?}");
}
