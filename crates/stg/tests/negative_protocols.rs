//! Hand-built broken protocols and controller traces, asserting the
//! *exact* violation each oracle reports — not just "some error".
//!
//! These pin down the diagnostic contract the mutation-testing engine
//! relies on: a protocol that re-opens a latch early must be reported as
//! data overwriting (Fig. 2.4), one that re-captures a stale item as
//! duplication, and a controller trace violating the Fig. 3.2 STG must
//! name the offending edge and the edges that were allowed instead.

use drd_stg::conformance::{check_trace, semi_decoupled_controller_stg, Conformance};
use drd_stg::flow_equiv::{check_flow_equivalence, FlowEquivalence};
use drd_stg::protocols::Protocol;
use drd_stg::Stg;

/// Fig. 2.4: the fall-decoupled protocol lets latch `A` re-open before
/// its successor captured, so an item is lost — the oracle must call it
/// data overwriting (a latch observes a skipped item), not deadlock.
#[test]
fn fall_decoupled_fails_with_data_overwriting() {
    let fe = check_flow_equivalence(&Protocol::FallDecoupled.stg(), 4, 1 << 20)
        .expect("bounded exploration");
    match fe {
        FlowEquivalence::Violated { reason } => {
            assert!(
                reason.contains("data overwriting") || reason.contains("skipped"),
                "expected an overwriting diagnostic, got: {reason}"
            );
        }
        other => panic!("fall-decoupled must be Violated, got {other:?}"),
    }
}

/// A protocol whose producer opens exactly once while the consumer
/// free-runs: the consumer's second capture sees the same stale item,
/// which must be reported as duplication.
///
/// `A+` consumes the only token and nothing replenishes it; `A-` has no
/// input places so it can never fire — `A` opens once and stays
/// transparent. `B` cycles on its private token loop.
#[test]
fn stale_recapture_fails_with_duplication() {
    let mut s = Stg::new(&["A", "B"]);
    s.arc("A-", "A+", 1).unwrap();
    s.arc("B+", "B-", 0).unwrap();
    s.arc("B-", "B+", 1).unwrap();
    let fe = check_flow_equivalence(&s, 2, 1 << 16).expect("bounded exploration");
    match fe {
        FlowEquivalence::Violated { reason } => {
            assert!(
                reason.contains("duplication"),
                "expected a duplication diagnostic, got: {reason}"
            );
        }
        other => panic!("stale recapture must be Violated, got {other:?}"),
    }
}

/// The rise-decoupled cousin of the duplication net: the consumer opens
/// twice per producer cycle because its re-open ignores the producer's
/// handshake entirely. Whatever interleaving the search picks, the
/// verdict must be a violation — never `Ok` and never a vacuous pass.
#[test]
fn free_running_consumer_never_verifies() {
    let mut s = Stg::new(&["A", "B"]);
    s.arc("A+", "A-", 0).unwrap();
    s.arc("A-", "A+", 1).unwrap();
    s.arc("B+", "B-", 0).unwrap();
    s.arc("B-", "B+", 1).unwrap();
    let fe = check_flow_equivalence(&s, 3, 1 << 16).expect("bounded exploration");
    assert!(
        matches!(fe, FlowEquivalence::Violated { .. }),
        "unsynchronized latches must violate flow equivalence, got {fe:?}"
    );
}

/// The latch-enable pulse may not open before the input request arrived:
/// `g+` from the initial marking is exactly the fault the
/// `detach-latch-enable` mutation induces at the gate level.
#[test]
fn enable_pulse_before_request_is_rejected() {
    let s = semi_decoupled_controller_stg();
    let mut c = Conformance::new(&s);
    let err = c.observe("g", true).unwrap_err();
    assert_eq!(err.at, 0);
    assert_eq!(err.event, "g+");
    assert!(
        err.allowed.contains(&"ri+".to_owned()),
        "only the input request may start the cycle, allowed = {:?}",
        err.allowed
    );
}

/// A duplicated capture pulse (`g+ g- g+` within one handshake) violates
/// the one-pulse-per-item contract; the checker must localize the fault
/// at the second `g+` and report the trace position.
#[test]
fn duplicated_capture_pulse_is_rejected() {
    let s = semi_decoupled_controller_stg();
    let mut c = Conformance::new(&s);
    c.observe_trace([("ri", true), ("ro", true), ("g", true), ("g", false)])
        .unwrap();
    let err = c.observe("g", true).unwrap_err();
    assert_eq!(err.at, 4);
    assert_eq!(err.event, "g+");
    assert!(!err.allowed.contains(&"g+".to_owned()));
    assert_eq!(c.observed(), 4, "accepted prefix must stay intact");
}

/// Withdrawing the output request while the successor still acknowledges
/// (a broken req/ack wire, the `stuck-ack` mutation's STG-level shadow)
/// is not an enabled edge.
#[test]
fn early_request_withdrawal_is_rejected() {
    let s = semi_decoupled_controller_stg();
    let err = check_trace(
        &s,
        [("ri", true), ("ro", true), ("g", true), ("ro", false)],
    )
    .unwrap_err();
    assert_eq!(err.at, 3);
    assert_eq!(err.event, "ro-");
}

/// Display formatting carries position, event and the allowed set — the
/// shape the fuzz harnesses print on failure.
#[test]
fn conformance_error_display_names_the_offender() {
    let s = semi_decoupled_controller_stg();
    let mut c = Conformance::new(&s);
    let err = c.observe("ao", true).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("event #0"), "{msg}");
    assert!(msg.contains("`ao+`"), "{msg}");
    assert!(msg.contains("allowed"), "{msg}");
}
