//! # drd-netlist — gate-level netlist infrastructure
//!
//! The base substrate of the `drdesync` workspace: an in-memory
//! representation of technology-mapped, gate-level digital circuits, plus a
//! structural-Verilog reader/writer and a BLIF writer, mirroring the design
//! import/export layer of the paper's `drdesync` tool (§3.2.1, §3.2.7).
//!
//! A [`Design`] owns a set of [`Module`]s. A module contains [`Net`]s,
//! [`Cell`]s (instances of library cells or of other modules) and [`Port`]s.
//! Connectivity is maintained incrementally: every net knows its driver and
//! its loads, so the grouping and control-insertion algorithms of the
//! desynchronizer can traverse the circuit in O(edges).
//!
//! ```
//! use drd_netlist::{Design, PortDir, Conn};
//!
//! # fn main() -> Result<(), drd_netlist::NetlistError> {
//! let mut design = Design::new();
//! let m = design.add_module("top");
//! let module = design.module_mut(m);
//! let a = module.add_port("a", PortDir::Input)?;
//! let z = module.add_port("z", PortDir::Output)?;
//! let a_net = module.port(a).net;
//! let z_net = module.port(z).net;
//! module.add_cell("u1", "INVX1", &[("A", Conn::Net(a_net)), ("Z", Conn::Net(z_net))])?;
//! let verilog = drd_netlist::verilog::write_design(&design);
//! assert!(verilog.contains("INVX1 u1"));
//! # Ok(())
//! # }
//! ```

pub mod blif;
pub mod bus;
mod design;
mod error;
mod flatten;
pub mod hash;
mod ids;
mod module;
pub mod passes;
pub mod stats;
pub mod symbol;
pub mod verilog;

pub use flatten::flatten;

pub use design::{Design, DesignPinDirs};
pub use error::NetlistError;
pub use ids::{CellId, ModuleId, NetId, PortId};
pub use module::{
    BusBit, Cell, CellKind, Conn, Connectivity, Endpoint, KindRef, Module, Net, PinDirs, PinUse,
    Port, PortDir,
};
pub use symbol::{Symbol, SymbolTable};
