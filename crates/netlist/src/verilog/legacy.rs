//! Frozen copy of the PR 4–7 token-vector Verilog front end.
//!
//! The streaming zero-copy front end (`super::lexer`/`super::parser`/
//! `super::writer`) replaced this implementation. The old one is kept
//! compiled for one release as the baseline of the differential
//! parser-equivalence suite (`tests/differential_frontend.rs`) and of the
//! `verilog_{parse,write}_dlx_full_legacy` bench kernels: old and new front
//! ends must produce structurally identical `Design`s on every accepted
//! input and must agree on rejection everywhere else.
//!
//! Behavioural quirk preserved on purpose: this parser forwards duplicate
//! module names straight into `Design::insert`, which panics. The new
//! parser reports `NetlistError::DuplicateName` instead; the differential
//! harness treats legacy-panic and new-error as equivalent rejection.
//!
//! Compiled only under `cfg(test)` or the `legacy-parser` feature. Do not
//! fix bugs here — fix them in the streaming front end and record the
//! divergence in the differential suite if observable.

pub use parser::{parse_design, parse_module};
pub use writer::{write_design, write_module};

mod lexer {
    use crate::NetlistError;

    /// A lexical token with its source line (1-based).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub(super) struct Token {
        pub kind: TokenKind,
        pub line: usize,
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub(super) enum TokenKind {
        /// Identifier or keyword. Escaped identifiers (`\foo `) arrive with
        /// the backslash stripped and `escaped == true`.
        Id { name: String, escaped: bool },
        /// A sized constant such as `1'b0` or `8'hFF`: (width, base, digits).
        SizedConst {
            width: u32,
            base: char,
            digits: String,
        },
        /// A bare unsigned decimal number (used in ranges and indices).
        Number(u64),
        /// Single-character punctuation: `( ) [ ] { } , ; : . =` etc.
        Punct(char),
        Eof,
    }

    impl TokenKind {
        pub fn describe(&self) -> String {
            match self {
                TokenKind::Id { name, .. } => format!("identifier `{name}`"),
                TokenKind::SizedConst { width, base, digits } => {
                    format!("constant `{width}'{base}{digits}`")
                }
                TokenKind::Number(n) => format!("number `{n}`"),
                TokenKind::Punct(c) => format!("`{c}`"),
                TokenKind::Eof => "end of file".to_owned(),
            }
        }
    }

    /// Tokenizes `source`, skipping `//`, `/* */` comments and attributes
    /// `(* ... *)`.
    pub(super) fn tokenize(source: &str) -> Result<Vec<Token>, NetlistError> {
        let mut tokens = Vec::new();
        let bytes = source.as_bytes();
        let mut i = 0;
        let mut line = 1;
        let n = bytes.len();
        while i < n {
            let c = bytes[i] as char;
            match c {
                '\n' => {
                    line += 1;
                    i += 1;
                }
                ' ' | '\t' | '\r' => i += 1,
                '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                    while i < n && bytes[i] != b'\n' {
                        i += 1;
                    }
                }
                '/' if i + 1 < n && bytes[i + 1] == b'*' => {
                    i += 2;
                    loop {
                        if i + 1 >= n {
                            return Err(NetlistError::Parse {
                                line,
                                col: 0,
                                offset: 0,
                                message: "unterminated block comment".into(),
                            });
                        }
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                            i += 2;
                            break;
                        }
                        i += 1;
                    }
                }
                '(' if i + 1 < n && bytes[i + 1] == b'*' => {
                    // Attribute instance `(* ... *)` — skipped.
                    i += 2;
                    loop {
                        if i + 1 >= n {
                            return Err(NetlistError::Parse {
                                line,
                                col: 0,
                                offset: 0,
                                message: "unterminated attribute".into(),
                            });
                        }
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        if bytes[i] == b'*' && bytes[i + 1] == b')' {
                            i += 2;
                            break;
                        }
                        i += 1;
                    }
                }
                '\\' => {
                    // Escaped identifier: up to the next whitespace. Only
                    // ASCII whitespace terminates (per the LRM).
                    let start = i + 1;
                    let mut j = start;
                    while j < n && !bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j == start {
                        return Err(NetlistError::Parse {
                            line,
                            col: 0,
                            offset: 0,
                            message: "empty escaped identifier".into(),
                        });
                    }
                    tokens.push(Token {
                        kind: TokenKind::Id {
                            name: source[start..j].to_owned(),
                            escaped: true,
                        },
                        line,
                    });
                    i = j;
                }
                c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                    let start = i;
                    while i < n {
                        let c = bytes[i] as char;
                        if c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '.' {
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Id {
                            name: source[start..i].to_owned(),
                            escaped: false,
                        },
                        line,
                    });
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    while i < n && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let value: u64 =
                        source[start..i]
                            .parse()
                            .map_err(|_| NetlistError::Parse {
                                line,
                                col: 0,
                                offset: 0,
                                message: "number too large".into(),
                            })?;
                    if i < n && bytes[i] == b'\'' {
                        if value > u64::from(u32::MAX) {
                            return Err(NetlistError::Parse {
                                line,
                                col: 0,
                                offset: 0,
                                message: format!("constant width {value} too large"),
                            });
                        }
                        i += 1;
                        if i >= n {
                            return Err(NetlistError::Parse {
                                line,
                                col: 0,
                                offset: 0,
                                message: "truncated sized constant".into(),
                            });
                        }
                        let base = (bytes[i] as char).to_ascii_lowercase();
                        if !matches!(base, 'b' | 'h' | 'd' | 'o') {
                            return Err(NetlistError::Parse {
                                line,
                                col: 0,
                                offset: 0,
                                message: format!("unknown constant base `{base}`"),
                            });
                        }
                        i += 1;
                        let dstart = i;
                        while i < n {
                            let c = (bytes[i] as char).to_ascii_lowercase();
                            if c.is_ascii_hexdigit() || c == '_' || c == 'x' || c == 'z' {
                                i += 1;
                            } else {
                                break;
                            }
                        }
                        if i == dstart {
                            return Err(NetlistError::Parse {
                                line,
                                col: 0,
                                offset: 0,
                                message: "sized constant has no digits".into(),
                            });
                        }
                        tokens.push(Token {
                            kind: TokenKind::SizedConst {
                                width: value as u32,
                                base,
                                digits: source[dstart..i].replace('_', ""),
                            },
                            line,
                        });
                    } else {
                        tokens.push(Token {
                            kind: TokenKind::Number(value),
                            line,
                        });
                    }
                }
                '(' | ')' | '[' | ']' | '{' | '}' | ',' | ';' | ':' | '.' | '=' | '#' => {
                    tokens.push(Token {
                        kind: TokenKind::Punct(c),
                        line,
                    });
                    i += 1;
                }
                other => {
                    return Err(NetlistError::Parse {
                        line,
                        col: 0,
                        offset: 0,
                        message: format!("unexpected character `{other}`"),
                    });
                }
            }
        }
        tokens.push(Token {
            kind: TokenKind::Eof,
            line,
        });
        Ok(tokens)
    }
}

mod parser {
    use std::collections::HashMap;

    use super::lexer::{tokenize, Token, TokenKind};
    use crate::{CellKind, Conn, Design, Module, NetId, NetlistError, PortDir};

    /// Widest bus (and largest bit index / constant width) accepted.
    const MAX_BUS_WIDTH: u64 = 65_536;

    /// Deepest `{...}` concatenation nesting accepted.
    const MAX_EXPR_DEPTH: usize = 64;

    /// Parses a (possibly multi-module) structural Verilog design with the
    /// frozen token-vector parser.
    ///
    /// # Errors
    /// As the streaming [`crate::verilog::parse_design`], except that
    /// duplicate module names panic here instead of erroring.
    pub fn parse_design(source: &str) -> Result<Design, NetlistError> {
        let tokens = tokenize(source)?;
        let mut p = Parser {
            tokens,
            pos: 0,
            escaped_names: HashMap::new(),
        };
        let mut design = Design::new();
        while !p.at_eof() {
            let module = p.parse_module()?;
            design.insert(module);
        }
        retarget_instances(&mut design);
        Ok(design)
    }

    /// Parses a source containing exactly one module with the frozen parser.
    ///
    /// # Errors
    /// As [`parse_design`]; additionally fails if the file does not contain
    /// exactly one module.
    pub fn parse_module(source: &str) -> Result<Module, NetlistError> {
        let design = parse_design(source)?;
        let mut modules: Vec<Module> = design.modules().map(|(_, m)| m.clone()).collect();
        if modules.len() != 1 {
            return Err(NetlistError::Parse {
                line: 1,
                col: 0,
                offset: 0,
                message: format!("expected exactly one module, found {}", modules.len()),
            });
        }
        Ok(modules.remove(0))
    }

    fn retarget_instances(design: &mut Design) {
        let module_names: Vec<String> = design.modules().map(|(_, m)| m.name.clone()).collect();
        let module_set: std::collections::HashSet<&str> =
            module_names.iter().map(|s| s.as_str()).collect();
        for name in &module_names {
            let Some(id) = design.find_module(name) else {
                continue;
            };
            let module = design.module_mut(id);
            let cell_ids: Vec<_> = module.cell_ids().collect();
            for cid in cell_ids {
                if let CellKind::Lib(sym) = module.cell_kind(cid) {
                    if module_set.contains(module.resolve(sym)) {
                        module.set_cell_kind(cid, CellKind::Instance(sym));
                    }
                }
            }
        }
    }

    struct Parser {
        tokens: Vec<Token>,
        pos: usize,
        /// Translation of escaped identifiers to sanitized simple names.
        escaped_names: HashMap<String, String>,
    }

    /// One bit of a connection expression.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Bit {
        Net(NetId),
        Const0,
        Const1,
    }

    impl Bit {
        fn to_conn(self) -> Conn {
            match self {
                Bit::Net(n) => Conn::Net(n),
                Bit::Const0 => Conn::Const0,
                Bit::Const1 => Conn::Const1,
            }
        }
    }

    impl Parser {
        fn peek(&self) -> &TokenKind {
            &self.tokens[self.pos].kind
        }

        fn line(&self) -> usize {
            self.tokens[self.pos].line
        }

        fn at_eof(&self) -> bool {
            matches!(self.peek(), TokenKind::Eof)
        }

        fn bump(&mut self) -> TokenKind {
            let kind = self.tokens[self.pos].kind.clone();
            if self.pos + 1 < self.tokens.len() {
                self.pos += 1;
            }
            kind
        }

        fn error(&self, message: impl Into<String>) -> NetlistError {
            NetlistError::Parse {
                line: self.line(),
                col: 0,
                offset: 0,
                message: message.into(),
            }
        }

        fn expect_punct(&mut self, c: char) -> Result<(), NetlistError> {
            if matches!(self.peek(), TokenKind::Punct(p) if *p == c) {
                self.bump();
                Ok(())
            } else {
                Err(self.error(format!("expected `{c}`, found {}", self.peek().describe())))
            }
        }

        fn eat_punct(&mut self, c: char) -> bool {
            if matches!(self.peek(), TokenKind::Punct(p) if *p == c) {
                self.bump();
                true
            } else {
                false
            }
        }

        fn expect_id(&mut self) -> Result<String, NetlistError> {
            match self.peek().clone() {
                TokenKind::Id { name, escaped } => {
                    self.bump();
                    Ok(if escaped {
                        self.sanitize_escaped(&name)
                    } else {
                        name
                    })
                }
                other => {
                    Err(self.error(format!("expected identifier, found {}", other.describe())))
                }
            }
        }

        fn expect_keyword(&mut self, kw: &str) -> Result<(), NetlistError> {
            match self.peek() {
                TokenKind::Id { name, escaped: false } if name == kw => {
                    self.bump();
                    Ok(())
                }
                other => Err(self.error(format!("expected `{kw}`, found {}", other.describe()))),
            }
        }

        fn peek_keyword(&self, kw: &str) -> bool {
            matches!(self.peek(), TokenKind::Id { name, escaped: false } if name == kw)
        }

        fn expect_number(&mut self) -> Result<u64, NetlistError> {
            match self.peek().clone() {
                TokenKind::Number(n) => {
                    self.bump();
                    Ok(n)
                }
                other => Err(self.error(format!("expected number, found {}", other.describe()))),
            }
        }

        /// Replaces characters outside `[A-Za-z0-9_$]` and normalizes bus
        /// brackets so `\reg[3] `-style escaped names keep their bus
        /// identity.
        fn sanitize_escaped(&mut self, raw: &str) -> String {
            if let Some(done) = self.escaped_names.get(raw) {
                return done.clone();
            }
            let (body, suffix) = match crate::bus::parse_bus_bit(raw) {
                Some((base, index)) => (base.to_owned(), format!("[{index}]")),
                None => (raw.to_owned(), String::new()),
            };
            let mut clean: String = body
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            if clean.chars().next().is_none_or(|c| c.is_ascii_digit()) {
                clean.insert(0, '_');
            }
            let mut candidate = format!("{clean}{suffix}");
            let mut i = 0;
            while self.escaped_names.values().any(|v| v == &candidate) {
                i += 1;
                candidate = format!("{clean}_e{i}{suffix}");
            }
            self.escaped_names.insert(raw.to_owned(), candidate.clone());
            candidate
        }

        fn parse_module(&mut self) -> Result<Module, NetlistError> {
            self.expect_keyword("module")?;
            let name = self.expect_id()?;
            let mut ctx = ModuleCtx {
                module: Module::new(name),
                buses: HashMap::new(),
                aliases: Vec::new(),
                header_ports: Vec::new(),
            };
            if self.eat_punct('(') {
                self.parse_port_list(&mut ctx)?;
                self.expect_punct(')')?;
            }
            self.expect_punct(';')?;
            while !self.peek_keyword("endmodule") {
                if self.at_eof() {
                    return Err(self.error("unexpected end of file inside module"));
                }
                self.parse_statement(&mut ctx)?;
            }
            self.expect_keyword("endmodule")?;
            ctx.resolve_aliases();
            Ok(ctx.module)
        }

        fn parse_port_list(&mut self, ctx: &mut ModuleCtx) -> Result<(), NetlistError> {
            if matches!(self.peek(), TokenKind::Punct(')')) {
                return Ok(());
            }
            loop {
                if self.peek_keyword("input")
                    || self.peek_keyword("output")
                    || self.peek_keyword("inout")
                {
                    // ANSI style: `input [3:0] a`
                    let dir = self.parse_dir()?;
                    let range = self.parse_optional_range()?;
                    let name = self.expect_id()?;
                    ctx.declare_port(&name, dir, range)
                        .map_err(|e| self.to_parse_err(e))?;
                } else {
                    let name = self.expect_id()?;
                    ctx.header_ports.push(name);
                }
                if !self.eat_punct(',') {
                    break;
                }
            }
            Ok(())
        }

        fn parse_dir(&mut self) -> Result<PortDir, NetlistError> {
            let kw = self.expect_id()?;
            match kw.as_str() {
                "input" => Ok(PortDir::Input),
                "output" => Ok(PortDir::Output),
                "inout" => Ok(PortDir::Inout),
                other => Err(self.error(format!("expected port direction, found `{other}`"))),
            }
        }

        /// A range/index bound, rejected beyond `MAX_BUS_WIDTH`.
        fn bounded_index(&mut self) -> Result<i64, NetlistError> {
            let line = self.line();
            let n = self.expect_number()?;
            if n > MAX_BUS_WIDTH {
                return Err(NetlistError::Parse {
                    line,
                    col: 0,
                    offset: 0,
                    message: format!(
                        "bit index {n} exceeds the supported maximum {MAX_BUS_WIDTH}"
                    ),
                });
            }
            Ok(n as i64)
        }

        fn parse_optional_range(&mut self) -> Result<Option<(i64, i64)>, NetlistError> {
            if !self.eat_punct('[') {
                return Ok(None);
            }
            let msb = self.bounded_index()?;
            self.expect_punct(':')?;
            let lsb = self.bounded_index()?;
            self.expect_punct(']')?;
            Ok(Some((msb, lsb)))
        }

        fn parse_statement(&mut self, ctx: &mut ModuleCtx) -> Result<(), NetlistError> {
            if self.peek_keyword("input") || self.peek_keyword("output") || self.peek_keyword("inout")
            {
                let dir = self.parse_dir()?;
                let range = self.parse_optional_range()?;
                loop {
                    let name = self.expect_id()?;
                    ctx.declare_port(&name, dir, range)
                        .map_err(|e| self.to_parse_err(e))?;
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.expect_punct(';')?;
            } else if self.peek_keyword("wire") || self.peek_keyword("tri") {
                self.bump();
                let range = self.parse_optional_range()?;
                loop {
                    let name = self.expect_id()?;
                    ctx.declare_wire(&name, range)
                        .map_err(|e| self.to_parse_err(e))?;
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.expect_punct(';')?;
            } else if self.peek_keyword("assign") {
                self.bump();
                let line = self.line();
                let lhs = self.parse_expr(ctx)?;
                self.expect_punct('=')?;
                let rhs = self.parse_expr(ctx)?;
                self.expect_punct(';')?;
                if lhs.len() != rhs.len() {
                    return Err(NetlistError::Parse {
                        line,
                        col: 0,
                        offset: 0,
                        message: format!(
                            "assign width mismatch: {} vs {} bits",
                            lhs.len(),
                            rhs.len()
                        ),
                    });
                }
                for (l, r) in lhs.iter().zip(rhs.iter()) {
                    let Bit::Net(lnet) = *l else {
                        return Err(NetlistError::Parse {
                            line,
                            col: 0,
                            offset: 0,
                            message: "assign target must be a net".into(),
                        });
                    };
                    ctx.aliases.push((lnet, *r));
                }
            } else {
                self.parse_instances(ctx)?;
            }
            Ok(())
        }

        fn parse_instances(&mut self, ctx: &mut ModuleCtx) -> Result<(), NetlistError> {
            let cell_type = self.expect_id()?;
            if self.eat_punct('#') {
                return Err(NetlistError::Unsupported {
                    line: self.line(),
                    message: "parameterized instances (`#`) are not supported".into(),
                });
            }
            loop {
                let inst_name = self.expect_id()?;
                self.expect_punct('(')?;
                let mut pins: Vec<(String, Conn)> = Vec::new();
                if !matches!(self.peek(), TokenKind::Punct(')')) {
                    if !matches!(self.peek(), TokenKind::Punct('.')) {
                        return Err(NetlistError::Unsupported {
                            line: self.line(),
                            message: "ordered (positional) connections are not supported; \
                                      use named connections"
                                .into(),
                        });
                    }
                    loop {
                        self.expect_punct('.')?;
                        let pin = self.expect_id()?;
                        self.expect_punct('(')?;
                        if matches!(self.peek(), TokenKind::Punct(')')) {
                            pins.push((pin, Conn::Open));
                        } else {
                            let bits = self.parse_expr(ctx)?;
                            if bits.len() == 1 {
                                pins.push((pin, bits[0].to_conn()));
                            } else {
                                let width = bits.len();
                                for (i, bit) in bits.iter().enumerate() {
                                    let idx = width - 1 - i;
                                    pins.push((format!("{pin}[{idx}]"), bit.to_conn()));
                                }
                            }
                        }
                        self.expect_punct(')')?;
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                }
                self.expect_punct(')')?;
                let pin_refs: Vec<(&str, Conn)> =
                    pins.iter().map(|(p, c)| (p.as_str(), *c)).collect();
                ctx.module
                    .add_cell(inst_name, &cell_type, &pin_refs)
                    .map_err(|e| self.to_parse_err(e))?;
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(';')?;
            Ok(())
        }

        /// expr := sized_const | id | id `[` number `]` | `{` expr, ... `}`
        fn parse_expr(&mut self, ctx: &mut ModuleCtx) -> Result<Vec<Bit>, NetlistError> {
            self.parse_expr_at(ctx, 0)
        }

        fn parse_expr_at(
            &mut self,
            ctx: &mut ModuleCtx,
            depth: usize,
        ) -> Result<Vec<Bit>, NetlistError> {
            if depth > MAX_EXPR_DEPTH {
                return Err(self.error(format!(
                    "concatenation nested deeper than {MAX_EXPR_DEPTH} levels"
                )));
            }
            match self.peek().clone() {
                TokenKind::SizedConst {
                    width,
                    base,
                    digits,
                } => {
                    self.bump();
                    self.const_bits(width, base, &digits)
                }
                TokenKind::Punct('{') => {
                    self.bump();
                    let mut bits = Vec::new();
                    loop {
                        bits.extend(self.parse_expr_at(ctx, depth + 1)?);
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct('}')?;
                    Ok(bits)
                }
                TokenKind::Id { .. } => {
                    let name = self.expect_id()?;
                    if self.eat_punct('[') {
                        let idx = self.bounded_index()?;
                        if self.eat_punct(':') {
                            let lsb = self.bounded_index()?;
                            self.expect_punct(']')?;
                            let mut bits = Vec::new();
                            let (hi, lo) = (idx.max(lsb), idx.min(lsb));
                            for i in (lo..=hi).rev() {
                                bits.push(Bit::Net(
                                    ctx.bit_net(&name, i).map_err(|e| self.to_parse_err(e))?,
                                ));
                            }
                            Ok(bits)
                        } else {
                            self.expect_punct(']')?;
                            Ok(vec![Bit::Net(
                                ctx.bit_net(&name, idx).map_err(|e| self.to_parse_err(e))?,
                            )])
                        }
                    } else {
                        Ok(ctx
                            .name_bits(&name)
                            .map_err(|e| self.to_parse_err(e))?)
                    }
                }
                other => {
                    Err(self.error(format!("expected expression, found {}", other.describe())))
                }
            }
        }

        fn const_bits(
            &self,
            width: u32,
            base: char,
            digits: &str,
        ) -> Result<Vec<Bit>, NetlistError> {
            if u64::from(width) > MAX_BUS_WIDTH {
                return Err(NetlistError::Parse {
                    line: self.line(),
                    col: 0,
                    offset: 0,
                    message: format!(
                        "constant width {width} exceeds the supported maximum {MAX_BUS_WIDTH}"
                    ),
                });
            }
            let radix = match base {
                'b' => 2,
                'o' => 8,
                'd' => 10,
                'h' => 16,
                _ => {
                    return Err(NetlistError::Parse {
                        line: self.line(),
                        col: 0,
                        offset: 0,
                        message: format!("unknown constant base `{base}`"),
                    })
                }
            };
            let value = u128::from_str_radix(digits, radix).map_err(|_| NetlistError::Parse {
                line: self.line(),
                col: 0,
                offset: 0,
                message: format!("invalid digits `{digits}` for base `{base}`"),
            })?;
            let mut bits = Vec::with_capacity(width as usize);
            for i in (0..width).rev() {
                bits.push(if (value >> i) & 1 == 1 {
                    Bit::Const1
                } else {
                    Bit::Const0
                });
            }
            Ok(bits)
        }

        fn to_parse_err(&self, e: NetlistError) -> NetlistError {
            match e {
                NetlistError::Parse { .. } | NetlistError::Unsupported { .. } => e,
                other => NetlistError::Parse {
                    line: self.line(),
                    col: 0,
                    offset: 0,
                    message: other.to_string(),
                },
            }
        }
    }

    struct ModuleCtx {
        module: Module,
        /// Declared bus ranges: base name → (msb, lsb).
        buses: HashMap<String, (i64, i64)>,
        /// `assign lhs = rhs` pairs collected for post-parse resolution.
        aliases: Vec<(NetId, Bit)>,
        /// Port names from a classic (non-ANSI) header, direction pending.
        header_ports: Vec<String>,
    }

    impl ModuleCtx {
        fn declare_wire(
            &mut self,
            name: &str,
            range: Option<(i64, i64)>,
        ) -> Result<(), NetlistError> {
            match range {
                None => {
                    if self.module.find_net(name).is_none() {
                        self.module.add_net(name)?;
                    }
                }
                Some((msb, lsb)) => {
                    self.buses.insert(name.to_owned(), (msb, lsb));
                    let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                    for i in lo..=hi {
                        let bit = crate::bus::bus_bit_name(name, i);
                        if self.module.find_net(&bit).is_none() {
                            self.module.add_net(bit)?;
                        }
                    }
                }
            }
            Ok(())
        }

        fn declare_port(
            &mut self,
            name: &str,
            dir: PortDir,
            range: Option<(i64, i64)>,
        ) -> Result<(), NetlistError> {
            match range {
                None => {
                    self.module.add_port(name, dir)?;
                }
                Some((msb, lsb)) => {
                    self.buses.insert(name.to_owned(), (msb, lsb));
                    let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                    for i in lo..=hi {
                        self.module
                            .add_port(crate::bus::bus_bit_name(name, i), dir)?;
                    }
                }
            }
            Ok(())
        }

        /// Net for `name[index]`, creating it if the bus was only implicit.
        fn bit_net(&mut self, name: &str, index: i64) -> Result<NetId, NetlistError> {
            let bit = crate::bus::bus_bit_name(name, index);
            match self.module.find_net(&bit) {
                Some(n) => Ok(n),
                None => self.module.add_net(bit),
            }
        }

        /// Bits for a bare identifier: the whole bus (MSB first) if declared
        /// as one, otherwise the scalar net (implicitly declared if needed).
        fn name_bits(&mut self, name: &str) -> Result<Vec<Bit>, NetlistError> {
            if let Some(&(msb, lsb)) = self.buses.get(name) {
                let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                let mut bits = Vec::with_capacity((hi - lo + 1) as usize);
                for i in (lo..=hi).rev() {
                    bits.push(Bit::Net(self.bit_net(name, i)?));
                }
                return Ok(bits);
            }
            let net = match self.module.find_net(name) {
                Some(n) => n,
                None => self.module.add_net(name)?,
            };
            Ok(vec![Bit::Net(net)])
        }

        /// Resolves `assign` aliases by merging nets (§3.2.1), leaving
        /// constant ties recorded on the module.
        fn resolve_aliases(&mut self) {
            if self.aliases.is_empty() {
                return;
            }
            let n = self.module.net_count();
            let mut uf = UnionFind::new(n);
            let mut consts: Vec<Option<bool>> = vec![None; n];
            for (lhs, rhs) in &self.aliases {
                match rhs {
                    Bit::Net(r) => uf.union(lhs.index(), r.index()),
                    Bit::Const0 => consts[uf.find(lhs.index())] = Some(false),
                    Bit::Const1 => consts[uf.find(lhs.index())] = Some(true),
                }
            }
            for i in 0..n {
                if let Some(v) = consts[i] {
                    let root = uf.find(i);
                    consts[root] = Some(v);
                }
            }
            let mut rep: Vec<Option<NetId>> = vec![None; n];
            let port_rank: Vec<Option<PortDir>> = {
                let mut ranks = vec![None; n];
                for (_, port) in self.module.ports() {
                    ranks[port.net.index()] = Some(port.dir);
                }
                ranks
            };
            for i in 0..n {
                let root = uf.find(i);
                let candidate = NetId::from_index(i);
                let better = match (rep[root], port_rank[i]) {
                    (None, _) => true,
                    (Some(cur), Some(PortDir::Input)) => {
                        port_rank[cur.index()] != Some(PortDir::Input)
                    }
                    _ => false,
                };
                if better {
                    rep[root] = Some(candidate);
                }
            }
            let mut involved: Vec<usize> = Vec::new();
            for (lhs, rhs) in &self.aliases {
                involved.push(lhs.index());
                if let Bit::Net(r) = rhs {
                    involved.push(r.index());
                }
            }
            involved.sort_unstable();
            involved.dedup();

            let mut remap: HashMap<NetId, Conn> = HashMap::new();
            for &i in &involved {
                let root = uf.find(i);
                let target = rep[root].expect("every class has a representative");
                match consts[root] {
                    Some(v) => {
                        let conn = if v { Conn::Const1 } else { Conn::Const0 };
                        remap.insert(NetId::from_index(i), conn);
                        self.module.add_const_tie(NetId::from_index(i), v);
                    }
                    None if i != target.index() => {
                        remap.insert(NetId::from_index(i), Conn::Net(target));
                        self.module.merge_port_net(NetId::from_index(i), target);
                    }
                    None => {}
                }
            }
            self.module.rewire_many(&remap);
        }
    }

    struct UnionFind {
        parent: Vec<u32>,
    }

    impl UnionFind {
        fn new(n: usize) -> Self {
            UnionFind {
                parent: (0..n as u32).collect(),
            }
        }

        fn find(&mut self, i: usize) -> usize {
            let mut root = i;
            while self.parent[root] as usize != root {
                root = self.parent[root] as usize;
            }
            let mut cur = i;
            while self.parent[cur] as usize != root {
                let next = self.parent[cur] as usize;
                self.parent[cur] = root as u32;
                cur = next;
            }
            root
        }

        fn union(&mut self, a: usize, b: usize) {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra != rb {
                self.parent[ra] = rb as u32;
            }
        }
    }
}

mod writer {
    use std::collections::{HashMap, HashSet};
    use std::fmt::Write as _;

    use crate::{Conn, Design, Module, PortDir};

    /// Writes all modules of `design` (top first) as structural Verilog
    /// with the frozen per-line-allocation writer.
    pub fn write_design(design: &Design) -> String {
        let mut out = String::new();
        let top = design.top();
        write_module_into(design.module(top), &mut out);
        for (id, module) in design.modules() {
            if id != top {
                out.push('\n');
                write_module_into(module, &mut out);
            }
        }
        out
    }

    /// Writes a single module as structural Verilog with the frozen writer.
    pub fn write_module(module: &Module) -> String {
        let mut out = String::new();
        write_module_into(module, &mut out);
        out
    }

    /// True if `name` is a plain Verilog identifier needing no escape.
    fn is_simple_id(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
    }

    /// Renders an identifier, escaping it if necessary. Escaped identifiers
    /// carry their mandatory trailing space.
    fn id(name: &str) -> String {
        if is_simple_id(name) {
            name.to_owned()
        } else {
            format!("\\{name} ")
        }
    }

    /// A declaration group: either one scalar name or a contiguous bus.
    #[derive(Debug)]
    struct DeclGroup {
        base: String,
        /// `None` for scalars, `Some((msb, lsb))` for buses.
        range: Option<(i64, i64)>,
    }

    /// Groups names (in first-seen order) into scalar and bus declarations.
    fn group_decls<'a>(names: impl Iterator<Item = &'a str>) -> Vec<DeclGroup> {
        let names: Vec<&str> = names.collect();
        let scalar_names: HashSet<&str> = names
            .iter()
            .copied()
            .filter(|n| crate::bus::parse_bus_bit(n).is_none())
            .collect();
        let mut order: Vec<String> = Vec::new();
        let mut buses: HashMap<String, (i64, i64)> = HashMap::new();
        let mut scalars: HashSet<String> = HashSet::new();
        for name in names {
            match crate::bus::parse_bus_bit(name) {
                Some((base, index)) if is_simple_id(base) && !scalar_names.contains(base) => {
                    match buses.get_mut(base) {
                        Some((msb, lsb)) => {
                            *msb = (*msb).max(index);
                            *lsb = (*lsb).min(index);
                        }
                        None => {
                            buses.insert(base.to_owned(), (index, index));
                            order.push(base.to_owned());
                        }
                    }
                }
                _ => {
                    if scalars.insert(name.to_owned()) {
                        order.push(name.to_owned());
                    }
                }
            }
        }
        order
            .into_iter()
            .map(|base| DeclGroup {
                range: buses.get(&base).copied(),
                base,
            })
            .collect()
    }

    fn write_module_into(module: &Module, out: &mut String) {
        let port_groups = group_decls(module.ports().map(|(_, p)| p.name));
        let _ = write!(out, "module {} (", id(&module.name));
        for (i, g) in port_groups.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&id(&g.base));
        }
        out.push_str(");\n");

        let dir_of: HashMap<&str, PortDir> =
            module.ports().map(|(_, p)| (p.name, p.dir)).collect();
        for g in &port_groups {
            let sample = match g.range {
                Some((msb, _)) => crate::bus::bus_bit_name(&g.base, msb),
                None => g.base.clone(),
            };
            let dir = dir_of
                .get(sample.as_str())
                .copied()
                .unwrap_or(PortDir::Input);
            match g.range {
                Some((msb, lsb)) => {
                    let _ = writeln!(out, "  {dir} [{msb}:{lsb}] {};", id(&g.base));
                }
                None => {
                    let _ = writeln!(out, "  {dir} {};", id(&g.base));
                }
            }
        }

        let port_nets: HashSet<&str> = module
            .ports()
            .map(|(_, p)| module.net(p.net).name)
            .chain(module.ports().map(|(_, p)| p.name))
            .collect();
        let wire_groups = group_decls(
            module
                .nets()
                .map(|(_, n)| n.name)
                .filter(|n| !port_nets.contains(n)),
        );
        for g in &wire_groups {
            match g.range {
                Some((msb, lsb)) => {
                    let _ = writeln!(out, "  wire [{msb}:{lsb}] {};", id(&g.base));
                }
                None => {
                    let _ = writeln!(out, "  wire {};", id(&g.base));
                }
            }
        }

        let port_name_set: HashSet<&str> = module.ports().map(|(_, p)| p.name).collect();
        for &(net, value) in module.const_ties() {
            let name = module.net(net).name;
            if port_name_set.contains(name) {
                let _ = writeln!(out, "  assign {} = 1'b{};", id(name), u8::from(value));
            }
        }
        for (_, port) in module.ports() {
            let net_name = module.net(port.net).name;
            if net_name != port.name && port.dir != PortDir::Input {
                let _ = writeln!(out, "  assign {} = {};", id(port.name), id(net_name));
            }
        }

        for (_, cell) in module.cells() {
            let _ = write!(out, "  {} {} (", id(cell.kind_name()), id(cell.name));
            let rendered = render_pins(module, cell);
            for (i, (pin, conn)) in rendered.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, ".{}({})", id(pin), conn);
            }
            out.push_str(");\n");
        }
        out.push_str("endmodule\n");
    }

    /// Renders the pin connections of a cell, re-grouping bit-blasted pins
    /// (`data[1]`, `data[0]`) into a single concatenation connection.
    fn render_pins(module: &Module, cell: crate::Cell<'_>) -> Vec<(String, String)> {
        let conn_text = |c: &Conn| -> String {
            match c {
                Conn::Net(n) => id(module.net(*n).name),
                Conn::Const0 => "1'b0".to_owned(),
                Conn::Const1 => "1'b1".to_owned(),
                Conn::Open => String::new(),
            }
        };
        let mut groups: HashMap<&str, Vec<(i64, String)>> = HashMap::new();
        let mut multi: HashSet<&str> = HashSet::new();
        for (i, (_, conn)) in cell.pins().iter().enumerate() {
            if let Some((base, index)) = crate::bus::parse_bus_bit(cell.pin_name(i)) {
                groups.entry(base).or_default().push((index, conn_text(conn)));
                if groups[base].len() > 1 {
                    multi.insert(base);
                }
            }
        }
        let mut done: HashSet<&str> = HashSet::new();
        let mut result = Vec::new();
        for (i, (_, conn)) in cell.pins().iter().enumerate() {
            let pin = cell.pin_name(i);
            match crate::bus::parse_bus_bit(pin) {
                Some((base, _)) if multi.contains(base) => {
                    if done.insert(base) {
                        let mut bits = groups.remove(base).expect("grouped above");
                        bits.sort_by_key(|(i, _)| std::cmp::Reverse(*i));
                        let concat = bits
                            .iter()
                            .map(|(_, t)| t.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        result.push((base.to_owned(), format!("{{{concat}}}")));
                    }
                }
                _ => result.push((pin.to_owned(), conn_text(conn))),
            }
        }
        result
    }
}
