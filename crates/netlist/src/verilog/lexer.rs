//! Streaming zero-copy tokenizer for the structural-Verilog subset.
//!
//! The lexer borrows every identifier and constant directly out of the one
//! input buffer as `&str` slices — no per-token `String`, no token vector.
//! [`Lexer`] is a pull lexer with one token of lookahead: [`Lexer::peek`]
//! returns the current (`Copy`) token, [`Lexer::advance`] scans the next
//! one in place. Positions are byte offsets into the borrowed buffer;
//! line/column are derived lazily (only when an error is actually
//! reported) by [`line_col`].

use crate::NetlistError;

/// A lexical token borrowing its text from the source buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum TokenKind<'a> {
    /// Identifier or keyword. Escaped identifiers (`\foo `) arrive with the
    /// backslash stripped and `escaped == true`.
    Id { name: &'a str, escaped: bool },
    /// A sized constant such as `1'b0` or `8'hFF`: (width, base, digits).
    /// `digits` is the raw slice — underscores are still present and are
    /// skipped when the constant's value is computed.
    SizedConst {
        width: u32,
        base: char,
        digits: &'a str,
    },
    /// A bare unsigned decimal number (used in ranges and indices).
    Number(u64),
    /// Single-character punctuation: `( ) [ ] { } , ; : . =` etc.
    Punct(char),
    Eof,
}

impl TokenKind<'_> {
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Id { name, .. } => format!("identifier `{name}`"),
            TokenKind::SizedConst { width, base, digits } => {
                format!("constant `{width}'{base}{digits}`")
            }
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::Punct(c) => format!("`{c}`"),
            TokenKind::Eof => "end of file".to_owned(),
        }
    }
}

/// 1-based (line, column) of byte `offset` in `src`, computed on demand.
///
/// Columns count characters, not bytes, so multi-byte identifiers report
/// the position a text editor shows. Offsets past the end (or mid
/// character, which token starts never are) are clamped to a boundary.
pub(super) fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let mut offset = offset.min(src.len());
    while offset > 0 && !src.is_char_boundary(offset) {
        offset -= 1;
    }
    let before = &src[..offset];
    let line = 1 + before.bytes().filter(|&b| b == b'\n').count();
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let col = 1 + before[line_start..].chars().count();
    (line, col)
}

/// A [`NetlistError::Parse`] carrying the full span (byte offset plus the
/// derived line/column) of the offending token.
pub(super) fn error_at(src: &str, offset: usize, message: String) -> NetlistError {
    let (line, col) = line_col(src, offset);
    NetlistError::Parse {
        line,
        col,
        offset,
        message,
    }
}

/// Streaming tokenizer over one borrowed source buffer.
pub(super) struct Lexer<'a> {
    src: &'a str,
    /// Scan cursor: first byte not yet consumed by the current token.
    pos: usize,
    /// Byte offset where the current token starts.
    tok_start: usize,
    /// The current token (one-token lookahead).
    tok: TokenKind<'a>,
}

/// Bytes that may continue a plain identifier (`.` included: flattened
/// hierarchical names keep their dots). One table load per byte beats the
/// four-way compare in the hottest scan of the lexer.
static ID_CHAR: [bool; 256] = {
    let mut t = [false; 256];
    let mut i = 0usize;
    while i < 256 {
        let b = i as u8;
        t[i] = b.is_ascii_alphanumeric() || b == b'_' || b == b'$' || b == b'.';
        i += 1;
    }
    t
};

impl<'a> Lexer<'a> {
    /// Starts lexing `src` at byte offset `start` (0 for whole-buffer
    /// parses; a module span start for parallel per-module parses — error
    /// spans stay global either way).
    pub fn new(src: &'a str, start: usize) -> Result<Self, Box<NetlistError>> {
        let mut lx = Lexer {
            src,
            pos: start,
            tok_start: start,
            tok: TokenKind::Eof,
        };
        lx.advance()?;
        Ok(lx)
    }

    /// The current token. `Copy`, so no clone and no allocation.
    pub fn peek(&self) -> TokenKind<'a> {
        self.tok
    }

    /// Byte offset of the current token in the source buffer.
    pub fn offset(&self) -> usize {
        self.tok_start
    }

    fn err(&self, offset: usize, message: impl Into<String>) -> Box<NetlistError> {
        Box::new(error_at(self.src, offset, message.into()))
    }

    /// Scans the next token into `peek()`, skipping whitespace, `//` and
    /// `/* */` comments and `(* ... *)` attributes.
    pub fn advance(&mut self) -> Result<(), Box<NetlistError>> {
        let bytes = self.src.as_bytes();
        let n = bytes.len();
        let mut i = self.pos;
        // Skip trivia.
        loop {
            if i >= n {
                self.tok_start = n;
                self.pos = n;
                self.tok = TokenKind::Eof;
                return Ok(());
            }
            match bytes[i] {
                b' ' | b'\t' | b'\r' | b'\n' => i += 1,
                b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                    while i < n && bytes[i] != b'\n' {
                        i += 1;
                    }
                }
                b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                    let open = i;
                    i += 2;
                    loop {
                        if i + 1 >= n {
                            return Err(self.err(open, "unterminated block comment"));
                        }
                        if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                            i += 2;
                            break;
                        }
                        i += 1;
                    }
                }
                b'(' if i + 1 < n && bytes[i + 1] == b'*' => {
                    // Attribute instance `(* ... *)` — skipped.
                    let open = i;
                    i += 2;
                    loop {
                        if i + 1 >= n {
                            return Err(self.err(open, "unterminated attribute"));
                        }
                        if bytes[i] == b'*' && bytes[i + 1] == b')' {
                            i += 2;
                            break;
                        }
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        self.tok_start = i;
        let c = bytes[i];
        self.tok = match c {
            b'\\' => {
                // Escaped identifier: up to the next whitespace. Only ASCII
                // whitespace terminates (per the LRM) — testing a raw byte
                // with `char::is_whitespace` would also match UTF-8
                // continuation bytes such as 0xA0 and split the slice in
                // the middle of a multi-byte character.
                let start = i + 1;
                let mut j = start;
                while j < n && !bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if j == start {
                    return Err(self.err(i, "empty escaped identifier"));
                }
                i = j;
                TokenKind::Id {
                    name: &self.src[start..j],
                    escaped: true,
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'$' => {
                let start = i;
                while i < n && ID_CHAR[bytes[i] as usize] {
                    i += 1;
                }
                TokenKind::Id {
                    name: &self.src[start..i],
                    escaped: false,
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let value: u64 = self.src[start..i]
                    .parse()
                    .map_err(|_| self.err(start, "number too large"))?;
                if i < n && bytes[i] == b'\'' {
                    if value > u64::from(u32::MAX) {
                        return Err(self.err(start, format!("constant width {value} too large")));
                    }
                    i += 1;
                    if i >= n {
                        return Err(self.err(start, "truncated sized constant"));
                    }
                    let base = (bytes[i] as char).to_ascii_lowercase();
                    if !matches!(base, 'b' | 'h' | 'd' | 'o') {
                        return Err(self.err(start, format!("unknown constant base `{base}`")));
                    }
                    i += 1;
                    let dstart = i;
                    while i < n {
                        let c = bytes[i].to_ascii_lowercase();
                        if c.is_ascii_hexdigit() || c == b'_' || c == b'x' || c == b'z' {
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    if i == dstart {
                        return Err(self.err(start, "sized constant has no digits"));
                    }
                    TokenKind::SizedConst {
                        width: value as u32,
                        base,
                        digits: &self.src[dstart..i],
                    }
                } else {
                    TokenKind::Number(value)
                }
            }
            b'(' | b')' | b'[' | b']' | b'{' | b'}' | b',' | b';' | b':' | b'.' | b'=' | b'#' => {
                i += 1;
                TokenKind::Punct(c as char)
            }
            _ => {
                // Decode the full character for the message; `bytes[i] as
                // char` would print a mojibake lead byte for multi-byte
                // input.
                let other = self.src[i..].chars().next().unwrap_or('\u{FFFD}');
                return Err(self.err(i, format!("unexpected character `{other}`")));
            }
        };
        self.pos = i;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]
    use super::*;

    /// Test helper reconstructing the legacy "tokenize everything" shape.
    fn kinds(src: &str) -> Result<Vec<TokenKind<'_>>, Box<NetlistError>> {
        let mut lx = Lexer::new(src, 0)?;
        let mut out = Vec::new();
        loop {
            let t = lx.peek();
            let eof = matches!(t, TokenKind::Eof);
            out.push(t);
            if eof {
                return Ok(out);
            }
            lx.advance()?;
        }
    }

    #[test]
    fn identifiers_and_punct() {
        let toks = kinds("module top (a, b);").unwrap();
        assert_eq!(toks.len(), 9); // module top ( a , b ) ; EOF
        assert!(matches!(toks[0], TokenKind::Id { name: "module", escaped: false }));
        assert!(matches!(toks[2], TokenKind::Punct('(')));
    }

    #[test]
    fn tokens_borrow_from_the_source_buffer() {
        let src = String::from("module top (a, b);");
        let lx = Lexer::new(&src, 0).unwrap();
        let TokenKind::Id { name, .. } = lx.peek() else {
            panic!("expected identifier");
        };
        // Zero-copy: the token's text is a slice of the input allocation.
        let src_range = src.as_ptr() as usize..src.as_ptr() as usize + src.len();
        assert!(src_range.contains(&(name.as_ptr() as usize)));
    }

    #[test]
    fn comments_and_attributes_are_skipped() {
        let toks = kinds("a // line\n /* block\n */ b (* keep=1 *) c").unwrap();
        let names: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Id { name, .. } => Some(*name),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn escaped_identifier() {
        let toks = kinds("\\a+b[0] x").unwrap();
        assert!(matches!(toks[0], TokenKind::Id { name: "a+b[0]", escaped: true }));
        assert!(matches!(toks[1], TokenKind::Id { name: "x", escaped: false }));
    }

    #[test]
    fn sized_constants() {
        let toks = kinds("1'b0 8'hFF 4'd10 12'b0101_0101").unwrap();
        assert!(matches!(
            toks[0],
            TokenKind::SizedConst { width: 1, base: 'b', digits: "0" }
        ));
        assert!(matches!(
            toks[1],
            TokenKind::SizedConst { width: 8, base: 'h', digits: "FF" }
        ));
        assert!(matches!(
            toks[2],
            TokenKind::SizedConst { width: 4, base: 'd', digits: "10" }
        ));
        // Digits stay raw (underscores included) — the parser skips them
        // when computing the value.
        assert!(matches!(
            toks[3],
            TokenKind::SizedConst { width: 12, base: 'b', digits: "0101_0101" }
        ));
    }

    #[test]
    fn offsets_point_at_token_starts() {
        let src = "a\n  b\nc";
        let mut lx = Lexer::new(src, 0).unwrap();
        assert_eq!(lx.offset(), 0);
        lx.advance().unwrap();
        assert_eq!(lx.offset(), 4); // `b` after "a\n  "
        assert_eq!(line_col(src, lx.offset()), (2, 3));
        lx.advance().unwrap();
        assert_eq!(line_col(src, lx.offset()), (3, 1));
        lx.advance().unwrap();
        assert!(matches!(lx.peek(), TokenKind::Eof));
        // Advancing past EOF is a no-op, not a panic.
        lx.advance().unwrap();
        assert!(matches!(lx.peek(), TokenKind::Eof));
    }

    #[test]
    fn line_col_counts_chars_not_bytes() {
        // 'é' is 2 bytes, 1 char: column must be 3 (1-based, after "é ").
        let src = "é x";
        assert_eq!(line_col(src, 3), (1, 3));
        // Clamped past the end.
        assert_eq!(line_col(src, 999), (1, 4));
    }

    #[test]
    fn bad_input_is_an_error() {
        assert!(kinds("a ? b").is_err());
        assert!(kinds("/* unterminated").is_err());
        assert!(kinds("4'q0").is_err());
    }

    #[test]
    fn lex_errors_carry_spans() {
        let Err(e) = kinds("ab\n cd ? x") else {
            panic!("expected error");
        };
        let NetlistError::Parse { line, col, offset, .. } = *e else {
            panic!("expected parse error");
        };
        assert_eq!(offset, 7);
        assert_eq!((line, col), (2, 5));
    }

    #[test]
    fn escaped_identifier_followed_by_nbsp_does_not_panic() {
        // U+00A0 is `char::is_whitespace` but its UTF-8 encoding starts
        // with 0xC2 — a byte-wise whitespace test would split the slice
        // mid-character and panic.
        let toks = kinds("\\a\u{00A0}b ").unwrap();
        assert!(matches!(toks[0], TokenKind::Id { escaped: true, .. }));
    }

    #[test]
    fn oversized_constant_width_is_an_error() {
        assert!(kinds("99999999999'b0").is_err());
        // A bare (unsized) huge number still errors only past u64.
        assert!(kinds("99999999999999999999999").is_err());
    }
}
