//! Tokenizer for the structural-Verilog subset.

use crate::NetlistError;

/// A lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TokenKind {
    /// Identifier or keyword. Escaped identifiers (`\foo `) arrive with the
    /// backslash stripped and `escaped == true`.
    Id { name: String, escaped: bool },
    /// A sized constant such as `1'b0` or `8'hFF`: (width, base, digits).
    SizedConst {
        width: u32,
        base: char,
        digits: String,
    },
    /// A bare unsigned decimal number (used in ranges and indices).
    Number(u64),
    /// Single-character punctuation: `( ) [ ] { } , ; : . =` etc.
    Punct(char),
    Eof,
}

impl TokenKind {
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Id { name, .. } => format!("identifier `{name}`"),
            TokenKind::SizedConst { width, base, digits } => {
                format!("constant `{width}'{base}{digits}`")
            }
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::Punct(c) => format!("`{c}`"),
            TokenKind::Eof => "end of file".to_owned(),
        }
    }
}

/// Tokenizes `source`, skipping `//`, `/* */` comments and attributes
/// `(* ... *)`.
pub(crate) fn tokenize(source: &str) -> Result<Vec<Token>, NetlistError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let n = bytes.len();
    while i < n {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(NetlistError::Parse {
                            line,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' if i + 1 < n && bytes[i + 1] == b'*' => {
                // Attribute instance `(* ... *)` — skipped.
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(NetlistError::Parse {
                            line,
                            message: "unterminated attribute".into(),
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b')' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '\\' => {
                // Escaped identifier: up to the next whitespace. Only ASCII
                // whitespace terminates (per the LRM) — testing a raw byte
                // with `char::is_whitespace` would also match UTF-8
                // continuation bytes such as 0xA0 and split the slice in
                // the middle of a multi-byte character.
                let start = i + 1;
                let mut j = start;
                while j < n && !bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if j == start {
                    return Err(NetlistError::Parse {
                        line,
                        message: "empty escaped identifier".into(),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Id {
                        name: source[start..j].to_owned(),
                        escaped: true,
                    },
                    line,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < n {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Id {
                        name: source[start..i].to_owned(),
                        escaped: false,
                    },
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let value: u64 =
                    source[start..i]
                        .parse()
                        .map_err(|_| NetlistError::Parse {
                            line,
                            message: "number too large".into(),
                        })?;
                if i < n && bytes[i] == b'\'' {
                    if value > u64::from(u32::MAX) {
                        return Err(NetlistError::Parse {
                            line,
                            message: format!("constant width {value} too large"),
                        });
                    }
                    i += 1;
                    if i >= n {
                        return Err(NetlistError::Parse {
                            line,
                            message: "truncated sized constant".into(),
                        });
                    }
                    let base = (bytes[i] as char).to_ascii_lowercase();
                    if !matches!(base, 'b' | 'h' | 'd' | 'o') {
                        return Err(NetlistError::Parse {
                            line,
                            message: format!("unknown constant base `{base}`"),
                        });
                    }
                    i += 1;
                    let dstart = i;
                    while i < n {
                        let c = (bytes[i] as char).to_ascii_lowercase();
                        if c.is_ascii_hexdigit() || c == '_' || c == 'x' || c == 'z' {
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    if i == dstart {
                        return Err(NetlistError::Parse {
                            line,
                            message: "sized constant has no digits".into(),
                        });
                    }
                    tokens.push(Token {
                        kind: TokenKind::SizedConst {
                            width: value as u32,
                            base,
                            digits: source[dstart..i].replace('_', ""),
                        },
                        line,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Number(value),
                        line,
                    });
                }
            }
            '(' | ')' | '[' | ']' | '{' | '}' | ',' | ';' | ':' | '.' | '=' | '#' => {
                tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
                i += 1;
            }
            other => {
                return Err(NetlistError::Parse {
                    line,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn identifiers_and_punct() {
        let toks = kinds("module top (a, b);");
        assert_eq!(toks.len(), 9); // module top ( a , b ) ; EOF
        assert!(matches!(&toks[0], TokenKind::Id { name, escaped: false } if name == "module"));
        assert!(matches!(&toks[2], TokenKind::Punct('(')));
    }

    #[test]
    fn comments_and_attributes_are_skipped() {
        let toks = kinds("a // line\n /* block\n */ b (* keep=1 *) c");
        let names: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Id { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn escaped_identifier() {
        let toks = kinds("\\a+b[0] x");
        assert!(matches!(&toks[0], TokenKind::Id { name, escaped: true } if name == "a+b[0]"));
        assert!(matches!(&toks[1], TokenKind::Id { name, escaped: false } if name == "x"));
    }

    #[test]
    fn sized_constants() {
        let toks = kinds("1'b0 8'hFF 4'd10");
        assert!(
            matches!(&toks[0], TokenKind::SizedConst { width: 1, base: 'b', digits } if digits == "0")
        );
        assert!(
            matches!(&toks[1], TokenKind::SizedConst { width: 8, base: 'h', digits } if digits == "FF")
        );
        assert!(
            matches!(&toks[2], TokenKind::SizedConst { width: 4, base: 'd', digits } if digits == "10")
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn bad_input_is_an_error() {
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("/* unterminated").is_err());
        assert!(tokenize("4'q0").is_err());
    }

    #[test]
    fn escaped_identifier_followed_by_nbsp_does_not_panic() {
        // U+00A0 is `char::is_whitespace` but its UTF-8 encoding starts
        // with 0xC2 — a byte-wise whitespace test would split the slice
        // mid-character and panic.
        let r = tokenize("\\a\u{00A0}b ");
        assert!(matches!(
            r.unwrap()[0].kind.clone(),
            TokenKind::Id { escaped: true, .. }
        ));
    }

    #[test]
    fn oversized_constant_width_is_an_error() {
        assert!(tokenize("99999999999'b0").is_err());
        // A bare (unsized) huge number still errors only past u64.
        assert!(tokenize("99999999999999999999999").is_err());
    }
}
