//! Structural (gate-level) Verilog reader and writer.
//!
//! This is the design import/export layer of the desynchronization tool
//! (§3.2.1, §3.2.7): it supports the flat, technology-mapped netlists
//! produced by synthesis — module/port/wire declarations with ranges,
//! library-cell and module instances with named connections, `assign`
//! aliases and constant ties, escaped identifiers, and sized constants.
//!
//! As in the paper, design import substitutes escaped names by simple ones
//! and resolves `assign` statements wherever possible, producing a cleaner
//! netlist without altering functionality.
//!
//! The front end is streaming and zero-copy: the lexer hands `&str` token
//! slices of the one input buffer to the parser, which interns them into
//! the per-module symbol table as it consumes them; the writer emits into
//! one preallocated buffer. Multi-module sources parse module-parallel
//! with deterministic output (see [`parse_design_jobs`]). The previous
//! front end survives verbatim in [`legacy`] as the differential-testing
//! baseline until the streaming one has soaked for a release.

// The reader is the hostile-input boundary of the whole tool: arbitrary
// bytes must come back as `NetlistError`, never as a panic.
#[deny(clippy::unwrap_used, clippy::panic)]
mod lexer;
#[deny(clippy::unwrap_used, clippy::panic)]
mod parser;
#[deny(clippy::unwrap_used, clippy::panic)]
mod writer;

#[cfg(any(test, feature = "legacy-parser"))]
pub mod legacy;

pub use parser::{parse_design, parse_design_jobs, parse_module};
pub use writer::{write_design, write_module};

#[cfg(test)]
mod tests {
    use crate::{Conn, Design, PortDir};

    /// Round-trip: build → write → parse → write must be a fixed point.
    #[test]
    fn write_parse_write_fixed_point() {
        let mut design = Design::new();
        let m = design.add_module("top");
        let module = design.module_mut(m);
        module.add_port("clk", PortDir::Input).unwrap();
        for i in 0..4 {
            module
                .add_port(format!("d[{i}]"), PortDir::Input)
                .unwrap();
            module
                .add_port(format!("q[{i}]"), PortDir::Output)
                .unwrap();
        }
        let clk = module.find_net("clk").unwrap();
        for i in 0..4 {
            let d = module.find_net(&format!("d[{i}]")).unwrap();
            let q = module.find_net(&format!("q[{i}]")).unwrap();
            module
                .add_cell(
                    format!("r{i}"),
                    "DFFX1",
                    &[
                        ("D", Conn::Net(d)),
                        ("CK", Conn::Net(clk)),
                        ("Q", Conn::Net(q)),
                    ],
                )
                .unwrap();
        }
        let text1 = super::write_design(&design);
        let parsed = super::parse_design(&text1).expect("own output parses");
        let text2 = super::write_design(&parsed);
        assert_eq!(text1, text2);
    }
}
