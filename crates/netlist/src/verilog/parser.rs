//! Recursive-descent parser for flat structural Verilog.
//!
//! Supported subset (everything a post-synthesis, technology-mapped netlist
//! contains): module declarations with classic or ANSI port lists,
//! `input`/`output`/`inout`/`wire` declarations with ranges, library-cell and
//! module instances with *named* connections (including bit-selects,
//! constants and concatenations), `assign` aliases, escaped identifiers and
//! sized constants.
//!
//! Following §3.2.1 of the paper, import *cleans* the design: escaped names
//! are substituted by simple ones and `assign` statements are resolved by
//! merging the aliased nets wherever possible.

use std::collections::HashMap;

use super::lexer::{tokenize, Token, TokenKind};
use crate::{CellKind, Conn, Design, Module, NetId, NetlistError, PortDir};

/// Widest bus (and largest bit index / constant width) the parser accepts.
/// Declarations and expressions expand buses bit by bit, so an unchecked
/// `wire [999999999:0]` in hostile input would allocate a net per bit; real
/// post-synthesis netlists stay far below this.
const MAX_BUS_WIDTH: u64 = 65_536;

/// Deepest `{...}` concatenation nesting accepted. The expression parser
/// recurses per nesting level and a stack overflow cannot be caught, so
/// hostile input like `({({({...` must be rejected by depth, not by crash.
const MAX_EXPR_DEPTH: usize = 64;

/// Parses a (possibly multi-module) structural Verilog design.
///
/// The first module in the file becomes the top module.
///
/// # Errors
/// Returns [`NetlistError::Parse`] on syntax errors and
/// [`NetlistError::Unsupported`] for constructs outside the structural
/// subset (behavioural code, ordered connections, expressions).
pub fn parse_design(source: &str) -> Result<Design, NetlistError> {
    let tokens = tokenize(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        escaped_names: HashMap::new(),
    };
    let mut design = Design::new();
    while !p.at_eof() {
        let module = p.parse_module()?;
        design.insert(module);
    }
    // Instances that name a module of this design are module instances, not
    // library cells.
    retarget_instances(&mut design);
    Ok(design)
}

/// Parses a source containing exactly one module.
///
/// # Errors
/// As [`parse_design`]; additionally fails if the file does not contain
/// exactly one module.
pub fn parse_module(source: &str) -> Result<Module, NetlistError> {
    let design = parse_design(source)?;
    let mut modules: Vec<Module> = design.modules().map(|(_, m)| m.clone()).collect();
    if modules.len() != 1 {
        return Err(NetlistError::Parse {
            line: 1,
            message: format!("expected exactly one module, found {}", modules.len()),
        });
    }
    Ok(modules.remove(0))
}

fn retarget_instances(design: &mut Design) {
    let module_names: Vec<String> = design.modules().map(|(_, m)| m.name.clone()).collect();
    let module_set: std::collections::HashSet<&str> =
        module_names.iter().map(|s| s.as_str()).collect();
    for name in &module_names {
        let Some(id) = design.find_module(name) else {
            continue;
        };
        let module = design.module_mut(id);
        let cell_ids: Vec<_> = module.cell_ids().collect();
        for cid in cell_ids {
            // The instance keeps the same name symbol: `Lib(sym)` and
            // `Instance(sym)` reference the same interned string.
            if let CellKind::Lib(sym) = module.cell_kind(cid) {
                if module_set.contains(module.resolve(sym)) {
                    module.set_cell_kind(cid, CellKind::Instance(sym));
                }
            }
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Translation of escaped identifiers to sanitized simple names.
    escaped_names: HashMap<String, String>,
}

/// One bit of a connection expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bit {
    Net(NetId),
    Const0,
    Const1,
}

impl Bit {
    fn to_conn(self) -> Conn {
        match self {
            Bit::Net(n) => Conn::Net(n),
            Bit::Const0 => Conn::Const0,
            Bit::Const1 => Conn::Const1,
        }
    }
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> NetlistError {
        NetlistError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), NetlistError> {
        if matches!(self.peek(), TokenKind::Punct(p) if *p == c) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected `{c}`, found {}", self.peek().describe())))
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), TokenKind::Punct(p) if *p == c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_id(&mut self) -> Result<String, NetlistError> {
        match self.peek().clone() {
            TokenKind::Id { name, escaped } => {
                self.bump();
                Ok(if escaped {
                    self.sanitize_escaped(&name)
                } else {
                    name
                })
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), NetlistError> {
        match self.peek() {
            TokenKind::Id { name, escaped: false } if name == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Id { name, escaped: false } if name == kw)
    }

    fn expect_number(&mut self) -> Result<u64, NetlistError> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(n)
            }
            other => Err(self.error(format!("expected number, found {}", other.describe()))),
        }
    }

    /// Replaces characters outside `[A-Za-z0-9_$]` and normalizes bus
    /// brackets so `\reg[3] `-style escaped names keep their bus identity.
    fn sanitize_escaped(&mut self, raw: &str) -> String {
        if let Some(done) = self.escaped_names.get(raw) {
            return done.clone();
        }
        // Preserve a trailing `[index]` (bus-bit) if present.
        let (body, suffix) = match crate::bus::parse_bus_bit(raw) {
            Some((base, index)) => (base.to_owned(), format!("[{index}]")),
            None => (raw.to_owned(), String::new()),
        };
        let mut clean: String = body
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        if clean.chars().next().is_none_or(|c| c.is_ascii_digit()) {
            clean.insert(0, '_');
        }
        let mut candidate = format!("{clean}{suffix}");
        let mut i = 0;
        while self.escaped_names.values().any(|v| v == &candidate) {
            i += 1;
            candidate = format!("{clean}_e{i}{suffix}");
        }
        self.escaped_names.insert(raw.to_owned(), candidate.clone());
        candidate
    }

    fn parse_module(&mut self) -> Result<Module, NetlistError> {
        self.expect_keyword("module")?;
        let name = self.expect_id()?;
        let mut ctx = ModuleCtx {
            module: Module::new(name),
            buses: HashMap::new(),
            aliases: Vec::new(),
            header_ports: Vec::new(),
        };
        if self.eat_punct('(') {
            self.parse_port_list(&mut ctx)?;
            self.expect_punct(')')?;
        }
        self.expect_punct(';')?;
        while !self.peek_keyword("endmodule") {
            if self.at_eof() {
                return Err(self.error("unexpected end of file inside module"));
            }
            self.parse_statement(&mut ctx)?;
        }
        self.expect_keyword("endmodule")?;
        ctx.resolve_aliases();
        Ok(ctx.module)
    }

    fn parse_port_list(&mut self, ctx: &mut ModuleCtx) -> Result<(), NetlistError> {
        if matches!(self.peek(), TokenKind::Punct(')')) {
            return Ok(());
        }
        loop {
            if self.peek_keyword("input") || self.peek_keyword("output") || self.peek_keyword("inout")
            {
                // ANSI style: `input [3:0] a`
                let dir = self.parse_dir()?;
                let range = self.parse_optional_range()?;
                let name = self.expect_id()?;
                ctx.declare_port(&name, dir, range)
                    .map_err(|e| self.to_parse_err(e))?;
            } else {
                let name = self.expect_id()?;
                ctx.header_ports.push(name);
            }
            if !self.eat_punct(',') {
                break;
            }
        }
        Ok(())
    }

    fn parse_dir(&mut self) -> Result<PortDir, NetlistError> {
        let kw = self.expect_id()?;
        match kw.as_str() {
            "input" => Ok(PortDir::Input),
            "output" => Ok(PortDir::Output),
            "inout" => Ok(PortDir::Inout),
            other => Err(self.error(format!("expected port direction, found `{other}`"))),
        }
    }

    /// A range/index bound, rejected beyond [`MAX_BUS_WIDTH`] (which also
    /// keeps the later `u64 → i64` cast lossless).
    fn bounded_index(&mut self) -> Result<i64, NetlistError> {
        let line = self.line();
        let n = self.expect_number()?;
        if n > MAX_BUS_WIDTH {
            return Err(NetlistError::Parse {
                line,
                message: format!("bit index {n} exceeds the supported maximum {MAX_BUS_WIDTH}"),
            });
        }
        Ok(n as i64)
    }

    fn parse_optional_range(&mut self) -> Result<Option<(i64, i64)>, NetlistError> {
        if !self.eat_punct('[') {
            return Ok(None);
        }
        let msb = self.bounded_index()?;
        self.expect_punct(':')?;
        let lsb = self.bounded_index()?;
        self.expect_punct(']')?;
        Ok(Some((msb, lsb)))
    }

    fn parse_statement(&mut self, ctx: &mut ModuleCtx) -> Result<(), NetlistError> {
        if self.peek_keyword("input") || self.peek_keyword("output") || self.peek_keyword("inout") {
            let dir = self.parse_dir()?;
            let range = self.parse_optional_range()?;
            loop {
                let name = self.expect_id()?;
                ctx.declare_port(&name, dir, range)
                    .map_err(|e| self.to_parse_err(e))?;
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(';')?;
        } else if self.peek_keyword("wire") || self.peek_keyword("tri") {
            self.bump();
            let range = self.parse_optional_range()?;
            loop {
                let name = self.expect_id()?;
                ctx.declare_wire(&name, range)
                    .map_err(|e| self.to_parse_err(e))?;
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(';')?;
        } else if self.peek_keyword("assign") {
            self.bump();
            let line = self.line();
            let lhs = self.parse_expr(ctx)?;
            self.expect_punct('=')?;
            let rhs = self.parse_expr(ctx)?;
            self.expect_punct(';')?;
            if lhs.len() != rhs.len() {
                return Err(NetlistError::Parse {
                    line,
                    message: format!(
                        "assign width mismatch: {} vs {} bits",
                        lhs.len(),
                        rhs.len()
                    ),
                });
            }
            for (l, r) in lhs.iter().zip(rhs.iter()) {
                let Bit::Net(lnet) = *l else {
                    return Err(NetlistError::Parse {
                        line,
                        message: "assign target must be a net".into(),
                    });
                };
                ctx.aliases.push((lnet, *r));
            }
        } else {
            self.parse_instances(ctx)?;
        }
        Ok(())
    }

    fn parse_instances(&mut self, ctx: &mut ModuleCtx) -> Result<(), NetlistError> {
        let cell_type = self.expect_id()?;
        if self.eat_punct('#') {
            return Err(NetlistError::Unsupported {
                line: self.line(),
                message: "parameterized instances (`#`) are not supported".into(),
            });
        }
        loop {
            let inst_name = self.expect_id()?;
            self.expect_punct('(')?;
            let mut pins: Vec<(String, Conn)> = Vec::new();
            if !matches!(self.peek(), TokenKind::Punct(')')) {
                if !matches!(self.peek(), TokenKind::Punct('.')) {
                    return Err(NetlistError::Unsupported {
                        line: self.line(),
                        message: "ordered (positional) connections are not supported; \
                                  use named connections"
                            .into(),
                    });
                }
                loop {
                    self.expect_punct('.')?;
                    let pin = self.expect_id()?;
                    self.expect_punct('(')?;
                    if matches!(self.peek(), TokenKind::Punct(')')) {
                        pins.push((pin, Conn::Open));
                    } else {
                        let bits = self.parse_expr(ctx)?;
                        if bits.len() == 1 {
                            pins.push((pin, bits[0].to_conn()));
                        } else {
                            // Multi-bit connection to a bit-blasted port:
                            // expand into `pin[k]` sub-pins, MSB first.
                            let width = bits.len();
                            for (i, bit) in bits.iter().enumerate() {
                                let idx = width - 1 - i;
                                pins.push((format!("{pin}[{idx}]"), bit.to_conn()));
                            }
                        }
                    }
                    self.expect_punct(')')?;
                    if !self.eat_punct(',') {
                        break;
                    }
                }
            }
            self.expect_punct(')')?;
            let pin_refs: Vec<(&str, Conn)> =
                pins.iter().map(|(p, c)| (p.as_str(), *c)).collect();
            ctx.module
                .add_cell(inst_name, &cell_type, &pin_refs)
                .map_err(|e| self.to_parse_err(e))?;
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(';')?;
        Ok(())
    }

    /// expr := sized_const | id | id `[` number `]` | `{` expr, ... `}`
    fn parse_expr(&mut self, ctx: &mut ModuleCtx) -> Result<Vec<Bit>, NetlistError> {
        self.parse_expr_at(ctx, 0)
    }

    fn parse_expr_at(
        &mut self,
        ctx: &mut ModuleCtx,
        depth: usize,
    ) -> Result<Vec<Bit>, NetlistError> {
        if depth > MAX_EXPR_DEPTH {
            return Err(self.error(format!(
                "concatenation nested deeper than {MAX_EXPR_DEPTH} levels"
            )));
        }
        match self.peek().clone() {
            TokenKind::SizedConst {
                width,
                base,
                digits,
            } => {
                self.bump();
                self.const_bits(width, base, &digits)
            }
            TokenKind::Punct('{') => {
                self.bump();
                let mut bits = Vec::new();
                loop {
                    bits.extend(self.parse_expr_at(ctx, depth + 1)?);
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.expect_punct('}')?;
                Ok(bits)
            }
            TokenKind::Id { .. } => {
                let name = self.expect_id()?;
                if self.eat_punct('[') {
                    let idx = self.bounded_index()?;
                    if self.eat_punct(':') {
                        let lsb = self.bounded_index()?;
                        self.expect_punct(']')?;
                        let mut bits = Vec::new();
                        let (hi, lo) = (idx.max(lsb), idx.min(lsb));
                        for i in (lo..=hi).rev() {
                            bits.push(Bit::Net(
                                ctx.bit_net(&name, i).map_err(|e| self.to_parse_err(e))?,
                            ));
                        }
                        Ok(bits)
                    } else {
                        self.expect_punct(']')?;
                        Ok(vec![Bit::Net(
                            ctx.bit_net(&name, idx).map_err(|e| self.to_parse_err(e))?,
                        )])
                    }
                } else {
                    Ok(ctx
                        .name_bits(&name)
                        .map_err(|e| self.to_parse_err(e))?)
                }
            }
            other => Err(self.error(format!("expected expression, found {}", other.describe()))),
        }
    }

    fn const_bits(&self, width: u32, base: char, digits: &str) -> Result<Vec<Bit>, NetlistError> {
        if u64::from(width) > MAX_BUS_WIDTH {
            return Err(NetlistError::Parse {
                line: self.line(),
                message: format!(
                    "constant width {width} exceeds the supported maximum {MAX_BUS_WIDTH}"
                ),
            });
        }
        let radix = match base {
            'b' => 2,
            'o' => 8,
            'd' => 10,
            'h' => 16,
            // The lexer validates the base, but stay panic-free if that
            // invariant ever slips.
            _ => {
                return Err(NetlistError::Parse {
                    line: self.line(),
                    message: format!("unknown constant base `{base}`"),
                })
            }
        };
        let value = u128::from_str_radix(digits, radix).map_err(|_| NetlistError::Parse {
            line: self.line(),
            message: format!("invalid digits `{digits}` for base `{base}`"),
        })?;
        let mut bits = Vec::with_capacity(width as usize);
        for i in (0..width).rev() {
            bits.push(if (value >> i) & 1 == 1 {
                Bit::Const1
            } else {
                Bit::Const0
            });
        }
        Ok(bits)
    }

    fn to_parse_err(&self, e: NetlistError) -> NetlistError {
        match e {
            NetlistError::Parse { .. } | NetlistError::Unsupported { .. } => e,
            other => NetlistError::Parse {
                line: self.line(),
                message: other.to_string(),
            },
        }
    }
}

struct ModuleCtx {
    module: Module,
    /// Declared bus ranges: base name → (msb, lsb).
    buses: HashMap<String, (i64, i64)>,
    /// `assign lhs = rhs` pairs collected for post-parse resolution.
    aliases: Vec<(NetId, Bit)>,
    /// Port names from a classic (non-ANSI) header, direction pending.
    header_ports: Vec<String>,
}

impl ModuleCtx {
    fn declare_wire(
        &mut self,
        name: &str,
        range: Option<(i64, i64)>,
    ) -> Result<(), NetlistError> {
        match range {
            None => {
                if self.module.find_net(name).is_none() {
                    self.module.add_net(name)?;
                }
            }
            Some((msb, lsb)) => {
                self.buses.insert(name.to_owned(), (msb, lsb));
                let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                for i in lo..=hi {
                    let bit = crate::bus::bus_bit_name(name, i);
                    if self.module.find_net(&bit).is_none() {
                        self.module.add_net(bit)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn declare_port(
        &mut self,
        name: &str,
        dir: PortDir,
        range: Option<(i64, i64)>,
    ) -> Result<(), NetlistError> {
        match range {
            None => {
                self.module.add_port(name, dir)?;
            }
            Some((msb, lsb)) => {
                self.buses.insert(name.to_owned(), (msb, lsb));
                let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                for i in lo..=hi {
                    self.module
                        .add_port(crate::bus::bus_bit_name(name, i), dir)?;
                }
            }
        }
        Ok(())
    }

    /// Net for `name[index]`, creating it if the bus was only implicit.
    fn bit_net(&mut self, name: &str, index: i64) -> Result<NetId, NetlistError> {
        let bit = crate::bus::bus_bit_name(name, index);
        match self.module.find_net(&bit) {
            Some(n) => Ok(n),
            None => self.module.add_net(bit),
        }
    }

    /// Bits for a bare identifier: the whole bus (MSB first) if declared as
    /// one, otherwise the scalar net (implicitly declared if needed).
    fn name_bits(&mut self, name: &str) -> Result<Vec<Bit>, NetlistError> {
        if let Some(&(msb, lsb)) = self.buses.get(name) {
            let (hi, lo) = (msb.max(lsb), msb.min(lsb));
            let mut bits = Vec::with_capacity((hi - lo + 1) as usize);
            for i in (lo..=hi).rev() {
                bits.push(Bit::Net(self.bit_net(name, i)?));
            }
            return Ok(bits);
        }
        let net = match self.module.find_net(name) {
            Some(n) => n,
            None => self.module.add_net(name)?,
        };
        Ok(vec![Bit::Net(net)])
    }

    /// Resolves `assign` aliases by merging nets (§3.2.1), leaving constant
    /// ties recorded on the module.
    fn resolve_aliases(&mut self) {
        if self.aliases.is_empty() {
            return;
        }
        let n = self.module.net_count();
        let mut uf = UnionFind::new(n);
        let mut consts: Vec<Option<bool>> = vec![None; n];
        for (lhs, rhs) in &self.aliases {
            match rhs {
                Bit::Net(r) => uf.union(lhs.index(), r.index()),
                Bit::Const0 => consts[uf.find(lhs.index())] = Some(false),
                Bit::Const1 => consts[uf.find(lhs.index())] = Some(true),
            }
        }
        // Push constants up to final roots.
        for i in 0..n {
            if let Some(v) = consts[i] {
                let root = uf.find(i);
                consts[root] = Some(v);
            }
        }
        // Choose a representative per class: prefer an input-port net (the
        // true driver), then any port net, then the lowest member.
        let mut rep: Vec<Option<NetId>> = vec![None; n];
        let port_rank: Vec<Option<PortDir>> = {
            let mut ranks = vec![None; n];
            for (_, port) in self.module.ports() {
                ranks[port.net.index()] = Some(port.dir);
            }
            ranks
        };
        for i in 0..n {
            let root = uf.find(i);
            let candidate = NetId::from_index(i);
            let better = match (rep[root], port_rank[i]) {
                (None, _) => true,
                (Some(cur), Some(PortDir::Input)) => {
                    port_rank[cur.index()] != Some(PortDir::Input)
                }
                _ => false,
            };
            if better {
                rep[root] = Some(candidate);
            }
        }
        // Only nets that actually appear in an alias need rewiring.
        let mut involved: Vec<usize> = Vec::new();
        for (lhs, rhs) in &self.aliases {
            involved.push(lhs.index());
            if let Bit::Net(r) = rhs {
                involved.push(r.index());
            }
        }
        involved.sort_unstable();
        involved.dedup();

        let mut remap: HashMap<NetId, Conn> = HashMap::new();
        for &i in &involved {
            let root = uf.find(i);
            let target = rep[root].expect("every class has a representative");
            match consts[root] {
                Some(v) => {
                    let conn = if v { Conn::Const1 } else { Conn::Const0 };
                    remap.insert(NetId::from_index(i), conn);
                    self.module.add_const_tie(NetId::from_index(i), v);
                }
                None if i != target.index() => {
                    remap.insert(NetId::from_index(i), Conn::Net(target));
                    self.module.merge_port_net(NetId::from_index(i), target);
                }
                None => {}
            }
        }
        self.module.rewire_many(&remap);
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = i;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]
    use super::*;

    #[test]
    fn parses_classic_header() {
        let src = "
            module top (a, z);
              input a; output z; wire m;
              INVX1 u1 (.A(a), .Z(m));
              INVX1 u2 (.A(m), .Z(z));
            endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.name, "top");
        assert_eq!(m.port_count(), 2);
        assert_eq!(m.cell_count(), 2);
        assert_eq!(
            m.cell(m.find_cell("u2").unwrap()).pin("A"),
            Some(Conn::Net(m.find_net("m").unwrap()))
        );
    }

    #[test]
    fn parses_ansi_header_with_ranges() {
        let src = "
            module top (input [1:0] d, output [1:0] q, input clk);
              DFFX1 r0 (.D(d[0]), .CK(clk), .Q(q[0]));
              DFFX1 r1 (.D(d[1]), .CK(clk), .Q(q[1]));
            endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.port_count(), 5);
        assert!(m.find_net("d[1]").is_some());
        assert!(m.find_net("q[0]").is_some());
    }

    #[test]
    fn constants_and_concatenation() {
        let src = "
            module top (output z);
              wire [1:0] w;
              SUB u (.in1({w[1], 1'b0}), .out1(z));
            endmodule
            module SUB (input [1:0] in1, output out1);
            endmodule";
        let d = parse_design(src).unwrap();
        let top = d.module(d.find_module("top").unwrap());
        let u = top.cell(top.find_cell("u").unwrap());
        assert_eq!(u.pin("in1[0]"), Some(Conn::Const0));
        assert_eq!(
            u.pin("in1[1]"),
            Some(Conn::Net(top.find_net("w[1]").unwrap()))
        );
        // SUB resolved as a module instance.
        assert_eq!(u.kind_ref(), crate::KindRef::Instance("SUB"));
    }

    #[test]
    fn assign_aliases_are_merged() {
        let src = "
            module top (input a, output z);
              wire m;
              assign m = a;
              INVX1 u (.A(m), .Z(z));
            endmodule";
        let m = parse_module(src).unwrap();
        let a = m.find_net("a").unwrap();
        let u = m.find_cell("u").unwrap();
        assert_eq!(m.cell(u).pin("A"), Some(Conn::Net(a)));
    }

    #[test]
    fn assign_constant_ties() {
        let src = "
            module top (output z);
              wire m;
              assign m = 1'b1;
              INVX1 u (.A(m), .Z(z));
            endmodule";
        let m = parse_module(src).unwrap();
        let u = m.find_cell("u").unwrap();
        assert_eq!(m.cell(u).pin("A"), Some(Conn::Const1));
    }

    #[test]
    fn assign_port_to_port() {
        let src = "
            module top (input a, output z);
              assign z = a;
            endmodule";
        let m = parse_module(src).unwrap();
        let a = m.find_net("a").unwrap();
        let zp = m.find_port("z").unwrap();
        assert_eq!(m.port(zp).net, a);
    }

    #[test]
    fn escaped_names_are_sanitized() {
        let src = "
            module top (input a, output z);
              wire \\net+with/specials ;
              INVX1 \\u(1) (.A(a), .Z(\\net+with/specials ));
              INVX1 u2 (.A(\\net+with/specials ), .Z(z));
            endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.cell_count(), 2);
        // All names are now simple identifiers.
        for (_, cell) in m.cells() {
            assert!(cell
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$'));
        }
        assert!(m.find_net("net_with_specials").is_some());
    }

    #[test]
    fn escaped_bus_bits_keep_bus_identity() {
        let src = "
            module top (input a);
              wire \\r/x[3] ;
              INVX1 u (.A(a), .Z(\\r/x[3] ));
            endmodule";
        let m = parse_module(src).unwrap();
        let net = m.find_net("r_x[3]").unwrap();
        assert_eq!(m.net(net).bus.unwrap().index, 3);
    }

    #[test]
    fn ordered_connections_rejected() {
        let src = "module top (input a, output z); INVX1 u (a, z); endmodule";
        assert!(matches!(
            parse_module(src),
            Err(NetlistError::Unsupported { .. })
        ));
    }

    #[test]
    fn multiple_instances_in_one_statement() {
        let src = "
            module top (input a, input b, output z, output y);
              INVX1 u1 (.A(a), .Z(z)), u2 (.A(b), .Z(y));
            endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.cell_count(), 2);
    }

    #[test]
    fn part_select_expands_msb_first() {
        let src = "
            module top (input [3:0] d, output z);
              SUB u (.in1(d[2:1]), .out1(z));
            endmodule
            module SUB (input [1:0] in1, output out1); endmodule";
        let d = parse_design(src).unwrap();
        let top = d.module(d.find_module("top").unwrap());
        let u = top.cell(top.find_cell("u").unwrap());
        assert_eq!(
            u.pin("in1[1]"),
            Some(Conn::Net(top.find_net("d[2]").unwrap()))
        );
        assert_eq!(
            u.pin("in1[0]"),
            Some(Conn::Net(top.find_net("d[1]").unwrap()))
        );
    }

    #[test]
    fn oversized_ranges_and_widths_are_rejected() {
        let huge_wire = "module top (input a); wire [999999999:0] w; endmodule";
        assert!(matches!(
            parse_module(huge_wire),
            Err(NetlistError::Parse { .. })
        ));
        let huge_port = "module top (input [4294967295:0] a); endmodule";
        assert!(matches!(
            parse_module(huge_port),
            Err(NetlistError::Parse { .. })
        ));
        let huge_select = "
            module top (input a, output z);
              INVX1 u (.A(d[999999999:0]), .Z(z));
            endmodule";
        assert!(matches!(
            parse_module(huge_select),
            Err(NetlistError::Parse { .. })
        ));
        let huge_const = "
            module top (output z);
              SUB u (.in1(100000000'b0), .out1(z));
            endmodule";
        assert!(matches!(
            parse_module(huge_const),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn deep_concatenation_is_rejected_not_a_stack_overflow() {
        let mut src = String::from("module top (input a, output z); INVX1 u (.A(");
        for _ in 0..20_000 {
            src.push('{');
        }
        src.push('a');
        for _ in 0..20_000 {
            src.push('}');
        }
        src.push_str("), .Z(z)); endmodule");
        assert!(matches!(
            parse_module(&src),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let src = "module top (a);\ninput a\nendmodule";
        match parse_module(src) {
            Err(NetlistError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
