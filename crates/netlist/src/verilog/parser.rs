//! Streaming recursive-descent parser for flat structural Verilog.
//!
//! Supported subset (everything a post-synthesis, technology-mapped netlist
//! contains): module declarations with classic or ANSI port lists,
//! `input`/`output`/`inout`/`wire` declarations with ranges, library-cell and
//! module instances with *named* connections (including bit-selects,
//! constants and concatenations), `assign` aliases, escaped identifiers and
//! sized constants.
//!
//! Following §3.2.1 of the paper, import *cleans* the design: escaped names
//! are substituted by simple ones and `assign` statements are resolved by
//! merging the aliased nets wherever possible.
//!
//! ## Zero-copy model
//!
//! The parser pulls `Copy` tokens straight off the streaming [`Lexer`] —
//! identifiers cross as `&str` slices of the one input buffer and are
//! interned into the per-module [`crate::SymbolTable`] the moment they are
//! consumed. The only per-name allocations left are for escaped
//! identifiers (sanitized into fresh simple names) and bus-bit names
//! (`base[i]`), which are composed in a reusable scratch buffer. Pin lists
//! and expression bit vectors are reused across statements.
//!
//! ## Parallel module parsing
//!
//! [`parse_design_jobs`] splits a multi-module source into per-module
//! spans with a token-level scan, parses the spans in parallel on the
//! `drd-runner` pool and merges the resulting modules *in module index
//! order* (first span = top module, first error by span index wins), so
//! the resulting `Design` is byte-identical to a serial parse for any
//! worker count. The scan refuses sources containing escaped identifiers
//! — their sanitized names are uniqued across modules, a serial-order
//! dependency — and anything that does not cleanly alternate
//! `module`…`endmodule` at the top level; those parse serially.

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt::Write as _;

use super::lexer::{error_at, line_col, Lexer, TokenKind};
use crate::hash::{FastHashMap, FastHashSet};
use crate::{CellKind, Conn, Design, Module, NetId, NetlistError, PortDir, Symbol};

/// Internal result type: errors are boxed so the `Result` fits in a
/// register pair. `NetlistError` is a multi-word enum, and returning it by
/// value from every `expect_*`/`advance` call makes the caller reserve and
/// copy stack space on the hot path; errors themselves are rare and can
/// afford the allocation. Unboxed at the public `parse_*` boundary.
type PResult<T> = Result<T, Box<NetlistError>>;

#[cold]
fn box_err(src: &str, offset: usize, message: String) -> Box<NetlistError> {
    Box::new(error_at(src, offset, message))
}

/// Widest bus (and largest bit index / constant width) the parser accepts.
/// Declarations and expressions expand buses bit by bit, so an unchecked
/// `wire [999999999:0]` in hostile input would allocate a net per bit; real
/// post-synthesis netlists stay far below this.
const MAX_BUS_WIDTH: u64 = 65_536;

/// Deepest `{...}` concatenation nesting accepted. The expression parser
/// recurses per nesting level and a stack overflow cannot be caught, so
/// hostile input like `({({({...` must be rejected by depth, not by crash.
const MAX_EXPR_DEPTH: usize = 64;

/// Sources smaller than this always parse serially when no explicit job
/// count is given: the span scan is an extra lexing pass and thread
/// startup costs more than parsing a small file.
const PARALLEL_MIN_BYTES: usize = 64 * 1024;

/// Parses a (possibly multi-module) structural Verilog design.
///
/// The first module in the file becomes the top module. Large multi-module
/// sources are parsed module-parallel on the default worker pool
/// (`DRD_WORKERS` / available cores); see [`parse_design_jobs`] for an
/// explicit job count. The result is byte-identical either way.
///
/// # Errors
/// Returns [`NetlistError::Parse`] on syntax errors (with byte offset and
/// line/column of the offending token), [`NetlistError::Unsupported`] for
/// constructs outside the structural subset (behavioural code, ordered
/// connections, expressions) and [`NetlistError::DuplicateName`] if two
/// modules share a name.
pub fn parse_design(source: &str) -> Result<Design, NetlistError> {
    parse_design_jobs(source, None)
}

/// [`parse_design`] with an explicit worker count (`None` = default pool).
///
/// `Some(1)` forces a serial parse; `Some(n > 1)` forces the parallel
/// module path whenever the source is splittable, regardless of size.
///
/// # Errors
/// As [`parse_design`].
pub fn parse_design_jobs(source: &str, jobs: Option<usize>) -> Result<Design, NetlistError> {
    let workers = jobs.unwrap_or_else(drd_runner::worker_count).max(1);
    // Cheap necessary condition for >= 2 modules before paying for the
    // token-level scan: "endmodule" must occur at least twice.
    if workers > 1
        && (jobs.is_some() || source.len() >= PARALLEL_MIN_BYTES)
        && source.matches("endmodule").nth(1).is_some()
    {
        if let Some(spans) = scan_module_spans(source) {
            if spans.len() >= 2 {
                return parse_parallel(source, &spans, workers);
            }
        }
    }
    parse_serial(source)
}

/// Parses a source containing exactly one module.
///
/// # Errors
/// As [`parse_design`]; additionally fails if the file does not contain
/// exactly one module.
pub fn parse_module(source: &str) -> Result<Module, NetlistError> {
    let design = parse_design(source)?;
    let mut modules: Vec<Module> = design.modules().map(|(_, m)| m.clone()).collect();
    if modules.len() != 1 {
        return Err(NetlistError::Parse {
            line: 1,
            col: 0,
            offset: 0,
            message: format!("expected exactly one module, found {}", modules.len()),
        });
    }
    Ok(modules.remove(0))
}

fn parse_serial(source: &str) -> Result<Design, NetlistError> {
    let mut p = Parser::new(source, 0).map_err(|e| *e)?;
    let mut design = Design::new();
    while !p.at_eof() {
        let module = p.parse_module_decl().map_err(|e| *e)?;
        insert_module(&mut design, module)?;
    }
    retarget_instances(&mut design);
    Ok(design)
}

/// Start offsets of each top-level `module` keyword, or `None` if the
/// source is not cleanly splittable: lex errors anywhere, stray tokens
/// between modules, a missing `endmodule`, or any escaped identifier
/// (sanitized escaped names are uniqued across modules in lexical order —
/// a serial-only dependency). `None` routes to the serial parser, which
/// reproduces the exact diagnostics.
fn scan_module_spans(src: &str) -> Option<Vec<usize>> {
    let mut lx = Lexer::new(src, 0).ok()?;
    let mut spans = Vec::new();
    let mut in_module = false;
    loop {
        match lx.peek() {
            TokenKind::Eof => break,
            TokenKind::Id { escaped: true, .. } => return None,
            TokenKind::Id {
                name: "module",
                escaped: false,
            } if !in_module => {
                spans.push(lx.offset());
                in_module = true;
            }
            TokenKind::Id {
                name: "endmodule",
                escaped: false,
            } if in_module => in_module = false,
            _ if !in_module => return None,
            _ => {}
        }
        lx.advance().ok()?;
    }
    if in_module {
        return None;
    }
    Some(spans)
}

fn parse_parallel(
    src: &str,
    starts: &[usize],
    workers: usize,
) -> Result<Design, NetlistError> {
    let results = drd_runner::run_indexed(starts.len(), workers, |i| -> PResult<Module> {
        let mut p = Parser::new(src, starts[i])?;
        p.parse_module_decl()
    });
    let mut design = Design::new();
    // Merge in span order: module ids, top selection and error precedence
    // all follow the source order, independent of scheduling.
    for result in results {
        insert_module(&mut design, result.map_err(|e| *e)?)?;
    }
    retarget_instances(&mut design);
    Ok(design)
}

fn insert_module(design: &mut Design, module: Module) -> Result<(), NetlistError> {
    if design.find_module(&module.name).is_some() {
        return Err(NetlistError::DuplicateName {
            kind: "module",
            name: module.name,
        });
    }
    design.insert(module);
    Ok(())
}

fn retarget_instances(design: &mut Design) {
    let module_names: Vec<String> = design.modules().map(|(_, m)| m.name.clone()).collect();
    for name in &module_names {
        let Some(id) = design.find_module(name) else {
            continue;
        };
        let module = design.module_mut(id);
        // Resolve every design module name to this module's symbol table
        // once; the per-cell check is then a u32 set probe instead of a
        // string resolve + hash. A module name the table has never seen
        // cannot be referenced by any cell here.
        let targets: FastHashSet<Symbol> = module_names
            .iter()
            .filter_map(|n| module.lookup_sym(n))
            .collect();
        if targets.is_empty() {
            continue;
        }
        let cell_ids: Vec<_> = module.cell_ids().collect();
        for cid in cell_ids {
            // The instance keeps the same name symbol: `Lib(sym)` and
            // `Instance(sym)` reference the same interned string.
            if let CellKind::Lib(sym) = module.cell_kind(cid) {
                if targets.contains(&sym) {
                    module.set_cell_kind(cid, CellKind::Instance(sym));
                }
            }
        }
    }
}

struct Parser<'a> {
    lx: Lexer<'a>,
    src: &'a str,
    /// Translation of escaped identifiers to sanitized simple names. Keys
    /// borrow from the source buffer; the map is shared across all modules
    /// of a serial parse so sanitized names stay design-unique.
    escaped_names: FastHashMap<&'a str, String>,
    /// Every sanitized name handed out so far, for O(1) collision checks
    /// when sanitizing a new escaped identifier (a linear scan over
    /// `escaped_names` values would make sanitization quadratic in the
    /// number of distinct escaped names).
    escaped_taken: FastHashSet<String>,
    /// Raw escaped slice → interned symbol of its sanitized name in the
    /// module currently being parsed. Written-out netlists reference every
    /// bus-bit net through an escaped identifier, so this memo turns the
    /// hot path (sanitize-map hit + `String` clone + re-intern) into one
    /// probe. Cleared per module — symbols are per-module.
    escaped_syms: FastHashMap<&'a str, Symbol>,
    /// Reusable pin buffer for instance statements.
    pins: Vec<(Symbol, Conn)>,
    /// Reusable expression bit buffers (`assign` needs two live at once).
    lhs_bits: Vec<Bit>,
    rhs_bits: Vec<Bit>,
}

/// One bit of a connection expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bit {
    Net(NetId),
    Const0,
    Const1,
}

impl Bit {
    fn to_conn(self) -> Conn {
        match self {
            Bit::Net(n) => Conn::Net(n),
            Bit::Const0 => Conn::Const0,
            Bit::Const1 => Conn::Const1,
        }
    }
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, start: usize) -> PResult<Self> {
        Ok(Parser {
            lx: Lexer::new(src, start)?,
            src,
            escaped_names: FastHashMap::default(),
            escaped_taken: FastHashSet::default(),
            escaped_syms: FastHashMap::default(),
            pins: Vec::new(),
            lhs_bits: Vec::new(),
            rhs_bits: Vec::new(),
        })
    }

    fn at_eof(&self) -> bool {
        matches!(self.lx.peek(), TokenKind::Eof)
    }

    /// A parse error pointing at the current token.
    fn error(&self, message: impl Into<String>) -> Box<NetlistError> {
        Box::new(error_at(self.src, self.lx.offset(), message.into()))
    }

    /// An unsupported-construct error at the current token's line.
    fn unsupported(&self, message: impl Into<String>) -> Box<NetlistError> {
        Box::new(NetlistError::Unsupported {
            line: line_col(self.src, self.lx.offset()).0,
            message: message.into(),
        })
    }

    fn expect_punct(&mut self, c: char) -> PResult<()> {
        if matches!(self.lx.peek(), TokenKind::Punct(p) if p == c) {
            self.lx.advance()
        } else {
            Err(self.error(format!(
                "expected `{c}`, found {}",
                self.lx.peek().describe()
            )))
        }
    }

    /// Consumes `c` if it is the current token. The `Result` is for the
    /// lexer scanning the *next* token, not for the match itself.
    fn eat_punct(&mut self, c: char) -> PResult<bool> {
        if matches!(self.lx.peek(), TokenKind::Punct(p) if p == c) {
            self.lx.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Consumes an identifier. Plain identifiers come back borrowed from
    /// the source buffer (zero-copy); escaped ones are sanitized into an
    /// owned simple name.
    fn expect_id(&mut self) -> PResult<Cow<'a, str>> {
        match self.lx.peek() {
            TokenKind::Id {
                name,
                escaped: false,
            } => {
                self.lx.advance()?;
                Ok(Cow::Borrowed(name))
            }
            TokenKind::Id {
                name,
                escaped: true,
            } => {
                self.lx.advance()?;
                Ok(Cow::Owned(self.sanitize_escaped(name)))
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> PResult<()> {
        match self.lx.peek() {
            TokenKind::Id {
                name,
                escaped: false,
            } if name == kw => self.lx.advance(),
            other => Err(self.error(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.lx.peek(), TokenKind::Id { name, escaped: false } if name == kw)
    }

    fn expect_number(&mut self) -> PResult<u64> {
        match self.lx.peek() {
            TokenKind::Number(n) => {
                self.lx.advance()?;
                Ok(n)
            }
            other => Err(self.error(format!("expected number, found {}", other.describe()))),
        }
    }

    /// Replaces characters outside `[A-Za-z0-9_$]` and normalizes bus
    /// brackets so `\reg[3] `-style escaped names keep their bus identity.
    fn sanitize_escaped(&mut self, raw: &'a str) -> String {
        if let Some(done) = self.escaped_names.get(raw) {
            return done.clone();
        }
        // Preserve a trailing `[index]` (bus-bit) if present.
        let (body, suffix) = match crate::bus::parse_bus_bit(raw) {
            Some((base, index)) => (base, format!("[{index}]")),
            None => (raw, String::new()),
        };
        let mut clean: String = body
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        if clean.chars().next().is_none_or(|c| c.is_ascii_digit()) {
            clean.insert(0, '_');
        }
        let mut candidate = format!("{clean}{suffix}");
        let mut i = 0;
        while self.escaped_taken.contains(&candidate) {
            i += 1;
            candidate = format!("{clean}_e{i}{suffix}");
        }
        self.escaped_taken.insert(candidate.clone());
        self.escaped_names.insert(raw, candidate.clone());
        candidate
    }

    fn parse_module_decl(&mut self) -> PResult<Module> {
        self.escaped_syms.clear();
        self.expect_keyword("module")?;
        let name = self.expect_id()?;
        let mut ctx = ModuleCtx {
            module: Module::new(name.into_owned()),
            buses: Vec::new(),
            bus_slots: Vec::new(),
            aliases: Vec::new(),
            scratch: String::new(),
        };
        // Allocation hints scaled from the remaining source (measured on
        // written-out netlists: ~50 bytes per cell, ~45 per net, ~17 per
        // pin). Capped so a module early in a huge multi-module file does
        // not reserve for the whole rest of the file.
        let remaining = self.src.len().saturating_sub(self.lx.offset()).min(2 << 20);
        ctx.module.reserve(
            remaining / 40,
            remaining / 40,
            remaining / 48,
            remaining / 16,
        );
        if self.eat_punct('(')? {
            self.parse_port_list(&mut ctx)?;
            self.expect_punct(')')?;
        }
        self.expect_punct(';')?;
        while !self.peek_keyword("endmodule") {
            if self.at_eof() {
                return Err(self.error("unexpected end of file inside module"));
            }
            self.parse_statement(&mut ctx)?;
        }
        self.expect_keyword("endmodule")?;
        ctx.resolve_aliases();
        Ok(ctx.module)
    }

    fn parse_port_list(&mut self, ctx: &mut ModuleCtx) -> PResult<()> {
        if matches!(self.lx.peek(), TokenKind::Punct(')')) {
            return Ok(());
        }
        loop {
            if self.peek_keyword("input") || self.peek_keyword("output") || self.peek_keyword("inout")
            {
                // ANSI style: `input [3:0] a`
                let dir = self.parse_dir()?;
                let range = self.parse_optional_range()?;
                let name = self.expect_id()?;
                ctx.declare_port(&name, dir, range)
                    .map_err(|e| self.to_parse_err(e))?;
            } else {
                // Classic header: names repeat in the body with their
                // directions; consuming the identifier (and sanitizing it
                // if escaped) is all that is needed here.
                self.expect_id()?;
            }
            if !self.eat_punct(',')? {
                break;
            }
        }
        Ok(())
    }

    fn parse_dir(&mut self) -> PResult<PortDir> {
        let at = self.lx.offset();
        let kw = self.expect_id()?;
        match &*kw {
            "input" => Ok(PortDir::Input),
            "output" => Ok(PortDir::Output),
            "inout" => Ok(PortDir::Inout),
            other => Err(box_err(
                self.src,
                at,
                format!("expected port direction, found `{other}`"),
            )),
        }
    }

    /// A range/index bound, rejected beyond [`MAX_BUS_WIDTH`] (which also
    /// keeps the later `u64 → i64` cast lossless).
    fn bounded_index(&mut self) -> PResult<i64> {
        let at = self.lx.offset();
        let n = self.expect_number()?;
        if n > MAX_BUS_WIDTH {
            return Err(box_err(
                self.src,
                at,
                format!("bit index {n} exceeds the supported maximum {MAX_BUS_WIDTH}"),
            ));
        }
        Ok(n as i64)
    }

    fn parse_optional_range(&mut self) -> PResult<Option<(i64, i64)>> {
        if !self.eat_punct('[')? {
            return Ok(None);
        }
        let msb = self.bounded_index()?;
        self.expect_punct(':')?;
        let lsb = self.bounded_index()?;
        self.expect_punct(']')?;
        Ok(Some((msb, lsb)))
    }

    fn parse_statement(&mut self, ctx: &mut ModuleCtx) -> PResult<()> {
        // One keyword dispatch instead of a peek per candidate — every
        // instance statement (the common case) would otherwise string-
        // compare against all six keywords before falling through.
        let kw = match self.lx.peek() {
            TokenKind::Id {
                name,
                escaped: false,
            } => name,
            _ => "",
        };
        if matches!(kw, "input" | "output" | "inout") {
            let dir = self.parse_dir()?;
            let range = self.parse_optional_range()?;
            loop {
                let name = self.expect_id()?;
                ctx.declare_port(&name, dir, range)
                    .map_err(|e| self.to_parse_err(e))?;
                if !self.eat_punct(',')? {
                    break;
                }
            }
            self.expect_punct(';')?;
        } else if matches!(kw, "wire" | "tri") {
            self.lx.advance()?;
            let range = self.parse_optional_range()?;
            loop {
                let name = self.expect_id()?;
                ctx.declare_wire(&name, range);
                if !self.eat_punct(',')? {
                    break;
                }
            }
            self.expect_punct(';')?;
        } else if kw == "assign" {
            self.lx.advance()?;
            let at = self.lx.offset();
            let mut lhs = std::mem::take(&mut self.lhs_bits);
            let mut rhs = std::mem::take(&mut self.rhs_bits);
            lhs.clear();
            rhs.clear();
            self.parse_expr(ctx, &mut lhs)?;
            self.expect_punct('=')?;
            self.parse_expr(ctx, &mut rhs)?;
            self.expect_punct(';')?;
            if lhs.len() != rhs.len() {
                return Err(box_err(
                    self.src,
                    at,
                    format!("assign width mismatch: {} vs {} bits", lhs.len(), rhs.len()),
                ));
            }
            for (l, r) in lhs.iter().zip(rhs.iter()) {
                let Bit::Net(lnet) = *l else {
                    return Err(box_err(
                        self.src,
                        at,
                        "assign target must be a net".into(),
                    ));
                };
                ctx.aliases.push((lnet, *r));
            }
            self.lhs_bits = lhs;
            self.rhs_bits = rhs;
        } else {
            self.parse_instances(ctx)?;
        }
        Ok(())
    }

    fn parse_instances(&mut self, ctx: &mut ModuleCtx) -> PResult<()> {
        let cell_type = self.expect_id()?;
        // Intern the cell type once per statement; every instance in the
        // statement shares the symbol.
        let kind = CellKind::Lib(ctx.module.intern(&cell_type));
        if self.eat_punct('#')? {
            return Err(self.unsupported("parameterized instances (`#`) are not supported"));
        }
        loop {
            let inst_name = self.expect_id()?;
            self.expect_punct('(')?;
            let mut pins = std::mem::take(&mut self.pins);
            pins.clear();
            self.parse_pin_list(ctx, &mut pins)?;
            self.expect_punct(')')?;
            ctx.module
                .add_cell_interned(&inst_name, kind, &pins)
                .map_err(|e| self.to_parse_err(e))?;
            self.pins = pins;
            if !self.eat_punct(',')? {
                break;
            }
        }
        self.expect_punct(';')?;
        Ok(())
    }

    fn parse_pin_list(
        &mut self,
        ctx: &mut ModuleCtx,
        pins: &mut Vec<(Symbol, Conn)>,
    ) -> PResult<()> {
        if matches!(self.lx.peek(), TokenKind::Punct(')')) {
            return Ok(());
        }
        if !matches!(self.lx.peek(), TokenKind::Punct('.')) {
            return Err(self.unsupported(
                "ordered (positional) connections are not supported; use named connections",
            ));
        }
        let mut bits = std::mem::take(&mut self.rhs_bits);
        loop {
            self.expect_punct('.')?;
            let pin = self.expect_id()?;
            let pin_sym = ctx.module.intern(&pin);
            self.expect_punct('(')?;
            if matches!(self.lx.peek(), TokenKind::Punct(')')) {
                pins.push((pin_sym, Conn::Open));
            } else {
                bits.clear();
                self.parse_expr(ctx, &mut bits)?;
                if bits.len() == 1 {
                    pins.push((pin_sym, bits[0].to_conn()));
                } else {
                    // Multi-bit connection to a bit-blasted port: expand
                    // into `pin[k]` sub-pins, MSB first.
                    let width = bits.len();
                    for (i, bit) in bits.iter().enumerate() {
                        let idx = (width - 1 - i) as i64;
                        let sub = ctx.intern_bus_bit(&pin, idx);
                        pins.push((sub, bit.to_conn()));
                    }
                }
            }
            self.expect_punct(')')?;
            if !self.eat_punct(',')? {
                break;
            }
        }
        self.rhs_bits = bits;
        Ok(())
    }

    /// expr := sized_const | id | id `[` number `]` | `{` expr, ... `}`
    ///
    /// Appends the expression's bits (MSB first) to `bits`.
    fn parse_expr(&mut self, ctx: &mut ModuleCtx, bits: &mut Vec<Bit>) -> PResult<()> {
        self.parse_expr_at(ctx, bits, 0)
    }

    fn parse_expr_at(
        &mut self,
        ctx: &mut ModuleCtx,
        bits: &mut Vec<Bit>,
        depth: usize,
    ) -> PResult<()> {
        if depth > MAX_EXPR_DEPTH {
            return Err(self.error(format!(
                "concatenation nested deeper than {MAX_EXPR_DEPTH} levels"
            )));
        }
        match self.lx.peek() {
            TokenKind::SizedConst {
                width,
                base,
                digits,
            } => {
                let at = self.lx.offset();
                self.lx.advance()?;
                self.const_bits(at, width, base, digits, bits)
            }
            TokenKind::Punct('{') => {
                self.lx.advance()?;
                loop {
                    self.parse_expr_at(ctx, bits, depth + 1)?;
                    if !self.eat_punct(',')? {
                        break;
                    }
                }
                self.expect_punct('}')
            }
            TokenKind::Id { name: raw, escaped } => {
                if !escaped {
                    // Dominant case: a plain net reference, usually without
                    // a select. Skip the `expect_id` re-match and `Cow`.
                    self.lx.advance()?;
                    if !matches!(self.lx.peek(), TokenKind::Punct('[')) {
                        ctx.name_bits(raw, bits);
                        return Ok(());
                    }
                    return self.parse_id_select(ctx, bits, raw);
                }
                if escaped {
                    if let Some(&sym) = self.escaped_syms.get(raw) {
                        self.lx.advance()?;
                        if !matches!(self.lx.peek(), TokenKind::Punct('[')) {
                            ctx.sym_bits(sym, bits);
                            return Ok(());
                        }
                        // Bit-select after an escaped identifier: rare
                        // enough that resolving the sanitized name back
                        // out of the table is fine.
                        let name = ctx.module.resolve(sym).to_owned();
                        return self.parse_id_select(ctx, bits, &name);
                    }
                }
                let name = self.expect_id()?;
                if escaped {
                    let sym = ctx.module.intern(&name);
                    self.escaped_syms.insert(raw, sym);
                }
                self.parse_id_select(ctx, bits, &name)
            }
            other => Err(self.error(format!("expected expression, found {}", other.describe()))),
        }
    }

    /// The tail of an identifier expression: an optional `[idx]` /
    /// `[msb:lsb]` select (the identifier itself is already consumed).
    fn parse_id_select(
        &mut self,
        ctx: &mut ModuleCtx,
        bits: &mut Vec<Bit>,
        name: &str,
    ) -> PResult<()> {
        if self.eat_punct('[')? {
            let idx = self.bounded_index()?;
            if self.eat_punct(':')? {
                let lsb = self.bounded_index()?;
                self.expect_punct(']')?;
                let (hi, lo) = (idx.max(lsb), idx.min(lsb));
                for i in (lo..=hi).rev() {
                    bits.push(Bit::Net(ctx.bit_net(name, i)));
                }
            } else {
                self.expect_punct(']')?;
                bits.push(Bit::Net(ctx.bit_net(name, idx)));
            }
        } else {
            ctx.name_bits(name, bits);
        }
        Ok(())
    }

    /// Expands a sized constant into bits (MSB first). The digit slice is
    /// raw from the lexer: underscores are skipped here and the value is
    /// accumulated with checked arithmetic, so `'hxz`, overflow and
    /// digits beyond the radix all come back as errors pointing at the
    /// constant (`at`), never as panics.
    fn const_bits(
        &self,
        at: usize,
        width: u32,
        base: char,
        digits: &str,
        bits: &mut Vec<Bit>,
    ) -> PResult<()> {
        if u64::from(width) > MAX_BUS_WIDTH {
            return Err(box_err(
                self.src,
                at,
                format!("constant width {width} exceeds the supported maximum {MAX_BUS_WIDTH}"),
            ));
        }
        let radix: u32 = match base {
            'b' => 2,
            'o' => 8,
            'd' => 10,
            'h' => 16,
            // The lexer validates the base, but stay panic-free if that
            // invariant ever slips.
            _ => {
                return Err(box_err(
                    self.src,
                    at,
                    format!("unknown constant base `{base}`"),
                ))
            }
        };
        let invalid = || {
            Box::new(error_at(
                self.src,
                at,
                format!(
                    "invalid digits `{}` for base `{base}`",
                    digits.replace('_', "")
                ),
            ))
        };
        let mut value: u128 = 0;
        let mut any = false;
        for c in digits.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(radix).ok_or_else(invalid)?;
            value = value
                .checked_mul(u128::from(radix))
                .and_then(|v| v.checked_add(u128::from(d)))
                .ok_or_else(invalid)?;
            any = true;
        }
        if !any {
            return Err(invalid());
        }
        bits.reserve(width as usize);
        for i in (0..width).rev() {
            // Bits above u128 are zero; guard the shift (u128 >> 128+
            // would overflow-panic in debug builds).
            let one = i < 128 && (value >> i) & 1 == 1;
            bits.push(if one { Bit::Const1 } else { Bit::Const0 });
        }
        Ok(())
    }

    fn to_parse_err(&self, e: NetlistError) -> Box<NetlistError> {
        match e {
            NetlistError::Parse { .. } | NetlistError::Unsupported { .. } => Box::new(e),
            other => self.error(other.to_string()),
        }
    }
}

/// A declared bus: its source range plus the per-bit net ids, cached so
/// references (`bus`, `bus[i]`) resolve with one symbol probe and an array
/// index instead of re-composing and re-hashing a `base[i]` string.
struct BusDecl {
    msb: i64,
    lsb: i64,
    /// Net of each bit, ordered `lo..=hi`.
    bits: Vec<NetId>,
}

impl BusDecl {
    #[inline]
    fn lo(&self) -> i64 {
        self.msb.min(self.lsb)
    }

    #[inline]
    fn hi(&self) -> i64 {
        self.msb.max(self.lsb)
    }
}

/// Slot-vector sentinel: symbol has no bus declaration.
const NO_BUS: u32 = u32::MAX;

/// Composes `base[index]` into `buf` without going through `fmt` — this
/// runs once per declared bus bit and the formatting machinery is
/// measurable there. Negative indices (not produced by well-formed
/// ranges, but reachable) fall back to `write!`.
fn push_bus_name(buf: &mut String, base: &str, index: i64) {
    buf.clear();
    buf.push_str(base);
    buf.push('[');
    if (0..=9).contains(&index) {
        buf.push(char::from(b'0' + index as u8));
    } else if index > 9 {
        let mut tmp = [0u8; 20];
        let mut n = tmp.len();
        let mut v = index as u64;
        while v > 0 {
            n -= 1;
            tmp[n] = b'0' + (v % 10) as u8;
            v /= 10;
        }
        buf.push_str(std::str::from_utf8(&tmp[n..]).unwrap_or("0"));
    } else {
        let _ = write!(buf, "{index}");
    }
    buf.push(']');
}

struct ModuleCtx {
    module: Module,
    /// Declared buses, in declaration order.
    buses: Vec<BusDecl>,
    /// Interned base-name symbol -> index into `buses`, [`NO_BUS`] when the
    /// symbol is not a declared bus. Indexed by `Symbol::index`, so the
    /// per-reference check is an array load instead of a hash probe.
    bus_slots: Vec<u32>,
    /// `assign lhs = rhs` pairs collected for post-parse resolution.
    aliases: Vec<(NetId, Bit)>,
    /// Reusable buffer for composing `base[i]` bus-bit names.
    scratch: String,
}

impl ModuleCtx {
    fn insert_bus(&mut self, sym: Symbol, decl: BusDecl) {
        let i = sym.index();
        if self.bus_slots.len() <= i {
            self.bus_slots.resize(i + 1, NO_BUS);
        }
        self.bus_slots[i] = self.buses.len() as u32;
        self.buses.push(decl);
    }

    #[inline]
    fn bus_of(&self, sym: Symbol) -> Option<&BusDecl> {
        match self.bus_slots.get(sym.index()).copied() {
            Some(slot) if slot != NO_BUS => Some(&self.buses[slot as usize]),
            _ => None,
        }
    }

    fn declare_wire(&mut self, name: &str, range: Option<(i64, i64)>) {
        match range {
            None => {
                self.module.get_or_add_net(name);
            }
            Some((msb, lsb)) => {
                let sym = self.module.intern(name);
                let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                let mut bits = Vec::with_capacity((hi - lo + 1) as usize);
                for i in lo..=hi {
                    push_bus_name(&mut self.scratch, name, i);
                    bits.push(self.module.get_or_add_bus_net(&self.scratch, sym, i));
                }
                self.insert_bus(sym, BusDecl { msb, lsb, bits });
            }
        }
    }

    fn declare_port(
        &mut self,
        name: &str,
        dir: PortDir,
        range: Option<(i64, i64)>,
    ) -> Result<(), NetlistError> {
        match range {
            None => {
                self.module.add_port(name, dir)?;
            }
            Some((msb, lsb)) => {
                let sym = self.module.intern(name);
                let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                let mut bits = Vec::with_capacity((hi - lo + 1) as usize);
                for i in lo..=hi {
                    push_bus_name(&mut self.scratch, name, i);
                    let pid = self.module.add_port(self.scratch.as_str(), dir)?;
                    bits.push(self.module.port(pid).net);
                }
                self.insert_bus(sym, BusDecl { msb, lsb, bits });
            }
        }
        Ok(())
    }

    /// Interns `base[index]` via the scratch buffer (no fresh `String`).
    fn intern_bus_bit(&mut self, base: &str, index: i64) -> Symbol {
        push_bus_name(&mut self.scratch, base, index);
        self.module.intern(&self.scratch)
    }

    /// Net for `name[index]`: an array lookup for declared buses, falling
    /// back to composing the `name[index]` net for implicit (undeclared)
    /// buses and out-of-range indices.
    fn bit_net(&mut self, name: &str, index: i64) -> NetId {
        let sym = self.module.intern(name);
        if let Some(decl) = self.bus_of(sym) {
            if index >= decl.lo() && index <= decl.hi() {
                return decl.bits[(index - decl.lo()) as usize];
            }
        }
        push_bus_name(&mut self.scratch, name, index);
        self.module.get_or_add_net(&self.scratch)
    }

    /// Appends the bits for a bare identifier: the whole bus (MSB first)
    /// if declared as one, otherwise the scalar net (implicitly declared
    /// if needed).
    fn name_bits(&mut self, name: &str, bits: &mut Vec<Bit>) {
        let sym = self.module.intern(name);
        if let Some(decl) = self.bus_of(sym) {
            bits.extend(decl.bits.iter().rev().map(|&n| Bit::Net(n)));
            return;
        }
        bits.push(Bit::Net(self.module.get_or_add_net_sym(sym, name)));
    }

    /// [`ModuleCtx::name_bits`] for an already-interned name.
    fn sym_bits(&mut self, sym: Symbol, bits: &mut Vec<Bit>) {
        if let Some(decl) = self.bus_of(sym) {
            bits.extend(decl.bits.iter().rev().map(|&n| Bit::Net(n)));
            return;
        }
        bits.push(Bit::Net(self.module.get_or_add_net_interned(sym)));
    }

    /// Resolves `assign` aliases by merging nets (§3.2.1), leaving constant
    /// ties recorded on the module.
    fn resolve_aliases(&mut self) {
        if self.aliases.is_empty() {
            return;
        }
        let n = self.module.net_count();
        let mut uf = UnionFind::new(n);
        let mut consts: Vec<Option<bool>> = vec![None; n];
        for (lhs, rhs) in &self.aliases {
            match rhs {
                Bit::Net(r) => uf.union(lhs.index(), r.index()),
                Bit::Const0 => consts[uf.find(lhs.index())] = Some(false),
                Bit::Const1 => consts[uf.find(lhs.index())] = Some(true),
            }
        }
        // Push constants up to final roots.
        for i in 0..n {
            if let Some(v) = consts[i] {
                let root = uf.find(i);
                consts[root] = Some(v);
            }
        }
        // Choose a representative per class: prefer an input-port net (the
        // true driver), then any port net, then the lowest member.
        let mut rep: Vec<Option<NetId>> = vec![None; n];
        let port_rank: Vec<Option<PortDir>> = {
            let mut ranks = vec![None; n];
            for (_, port) in self.module.ports() {
                ranks[port.net.index()] = Some(port.dir);
            }
            ranks
        };
        for i in 0..n {
            let root = uf.find(i);
            let candidate = NetId::from_index(i);
            let better = match (rep[root], port_rank[i]) {
                (None, _) => true,
                (Some(cur), Some(PortDir::Input)) => {
                    port_rank[cur.index()] != Some(PortDir::Input)
                }
                _ => false,
            };
            if better {
                rep[root] = Some(candidate);
            }
        }
        // Only nets that actually appear in an alias need rewiring.
        let mut involved: Vec<usize> = Vec::new();
        for (lhs, rhs) in &self.aliases {
            involved.push(lhs.index());
            if let Bit::Net(r) = rhs {
                involved.push(r.index());
            }
        }
        involved.sort_unstable();
        involved.dedup();

        let mut remap: HashMap<NetId, Conn> = HashMap::new();
        for &i in &involved {
            let root = uf.find(i);
            let target = rep[root].expect("every class has a representative");
            match consts[root] {
                Some(v) => {
                    let conn = if v { Conn::Const1 } else { Conn::Const0 };
                    remap.insert(NetId::from_index(i), conn);
                    self.module.add_const_tie(NetId::from_index(i), v);
                }
                None if i != target.index() => {
                    remap.insert(NetId::from_index(i), Conn::Net(target));
                    self.module.merge_port_net(NetId::from_index(i), target);
                }
                None => {}
            }
        }
        self.module.rewire_many(&remap);
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = i;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]
    use super::*;

    #[test]
    fn parses_classic_header() {
        let src = "
            module top (a, z);
              input a; output z; wire m;
              INVX1 u1 (.A(a), .Z(m));
              INVX1 u2 (.A(m), .Z(z));
            endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.name, "top");
        assert_eq!(m.port_count(), 2);
        assert_eq!(m.cell_count(), 2);
        assert_eq!(
            m.cell(m.find_cell("u2").unwrap()).pin("A"),
            Some(Conn::Net(m.find_net("m").unwrap()))
        );
    }

    #[test]
    fn parses_ansi_header_with_ranges() {
        let src = "
            module top (input [1:0] d, output [1:0] q, input clk);
              DFFX1 r0 (.D(d[0]), .CK(clk), .Q(q[0]));
              DFFX1 r1 (.D(d[1]), .CK(clk), .Q(q[1]));
            endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.port_count(), 5);
        assert!(m.find_net("d[1]").is_some());
        assert!(m.find_net("q[0]").is_some());
    }

    #[test]
    fn constants_and_concatenation() {
        let src = "
            module top (output z);
              wire [1:0] w;
              SUB u (.in1({w[1], 1'b0}), .out1(z));
            endmodule
            module SUB (input [1:0] in1, output out1);
            endmodule";
        let d = parse_design(src).unwrap();
        let top = d.module(d.find_module("top").unwrap());
        let u = top.cell(top.find_cell("u").unwrap());
        assert_eq!(u.pin("in1[0]"), Some(Conn::Const0));
        assert_eq!(
            u.pin("in1[1]"),
            Some(Conn::Net(top.find_net("w[1]").unwrap()))
        );
        // SUB resolved as a module instance.
        assert_eq!(u.kind_ref(), crate::KindRef::Instance("SUB"));
    }

    #[test]
    fn underscored_and_wide_constants() {
        let src = "
            module top (output z);
              SUB u (.in1(8'b1010_0101), .out1(z));
            endmodule";
        let m = parse_module(src).unwrap();
        let u = m.cell(m.find_cell("u").unwrap());
        assert_eq!(u.pin("in1[7]"), Some(Conn::Const1));
        assert_eq!(u.pin("in1[6]"), Some(Conn::Const0));
        assert_eq!(u.pin("in1[0]"), Some(Conn::Const1));
        // Widths beyond 128 bits zero-extend instead of overflowing the
        // u128 accumulator's shift range.
        let wide = "
            module top (output z);
              SUB u (.in1(200'h3), .out1(z));
            endmodule";
        let m = parse_module(wide).unwrap();
        let u = m.cell(m.find_cell("u").unwrap());
        assert_eq!(u.pin("in1[199]"), Some(Conn::Const0));
        assert_eq!(u.pin("in1[1]"), Some(Conn::Const1));
        assert_eq!(u.pin("in1[0]"), Some(Conn::Const1));
    }

    #[test]
    fn assign_aliases_are_merged() {
        let src = "
            module top (input a, output z);
              wire m;
              assign m = a;
              INVX1 u (.A(m), .Z(z));
            endmodule";
        let m = parse_module(src).unwrap();
        let a = m.find_net("a").unwrap();
        let u = m.find_cell("u").unwrap();
        assert_eq!(m.cell(u).pin("A"), Some(Conn::Net(a)));
    }

    #[test]
    fn assign_constant_ties() {
        let src = "
            module top (output z);
              wire m;
              assign m = 1'b1;
              INVX1 u (.A(m), .Z(z));
            endmodule";
        let m = parse_module(src).unwrap();
        let u = m.find_cell("u").unwrap();
        assert_eq!(m.cell(u).pin("A"), Some(Conn::Const1));
    }

    #[test]
    fn assign_port_to_port() {
        let src = "
            module top (input a, output z);
              assign z = a;
            endmodule";
        let m = parse_module(src).unwrap();
        let a = m.find_net("a").unwrap();
        let zp = m.find_port("z").unwrap();
        assert_eq!(m.port(zp).net, a);
    }

    #[test]
    fn escaped_names_are_sanitized() {
        let src = "
            module top (input a, output z);
              wire \\net+with/specials ;
              INVX1 \\u(1) (.A(a), .Z(\\net+with/specials ));
              INVX1 u2 (.A(\\net+with/specials ), .Z(z));
            endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.cell_count(), 2);
        // All names are now simple identifiers.
        for (_, cell) in m.cells() {
            assert!(cell
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$'));
        }
        assert!(m.find_net("net_with_specials").is_some());
    }

    #[test]
    fn escaped_bus_bits_keep_bus_identity() {
        let src = "
            module top (input a);
              wire \\r/x[3] ;
              INVX1 u (.A(a), .Z(\\r/x[3] ));
            endmodule";
        let m = parse_module(src).unwrap();
        let net = m.find_net("r_x[3]").unwrap();
        assert_eq!(m.net(net).bus.unwrap().index, 3);
    }

    #[test]
    fn ordered_connections_rejected() {
        let src = "module top (input a, output z); INVX1 u (a, z); endmodule";
        assert!(matches!(
            parse_module(src),
            Err(NetlistError::Unsupported { .. })
        ));
    }

    #[test]
    fn multiple_instances_in_one_statement() {
        let src = "
            module top (input a, input b, output z, output y);
              INVX1 u1 (.A(a), .Z(z)), u2 (.A(b), .Z(y));
            endmodule";
        let m = parse_module(src).unwrap();
        assert_eq!(m.cell_count(), 2);
    }

    #[test]
    fn part_select_expands_msb_first() {
        let src = "
            module top (input [3:0] d, output z);
              SUB u (.in1(d[2:1]), .out1(z));
            endmodule
            module SUB (input [1:0] in1, output out1); endmodule";
        let d = parse_design(src).unwrap();
        let top = d.module(d.find_module("top").unwrap());
        let u = top.cell(top.find_cell("u").unwrap());
        assert_eq!(
            u.pin("in1[1]"),
            Some(Conn::Net(top.find_net("d[2]").unwrap()))
        );
        assert_eq!(
            u.pin("in1[0]"),
            Some(Conn::Net(top.find_net("d[1]").unwrap()))
        );
    }

    #[test]
    fn oversized_ranges_and_widths_are_rejected() {
        let huge_wire = "module top (input a); wire [999999999:0] w; endmodule";
        assert!(matches!(
            parse_module(huge_wire),
            Err(NetlistError::Parse { .. })
        ));
        let huge_port = "module top (input [4294967295:0] a); endmodule";
        assert!(matches!(
            parse_module(huge_port),
            Err(NetlistError::Parse { .. })
        ));
        let huge_select = "
            module top (input a, output z);
              INVX1 u (.A(d[999999999:0]), .Z(z));
            endmodule";
        assert!(matches!(
            parse_module(huge_select),
            Err(NetlistError::Parse { .. })
        ));
        let huge_const = "
            module top (output z);
              SUB u (.in1(100000000'b0), .out1(z));
            endmodule";
        assert!(matches!(
            parse_module(huge_const),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn deep_concatenation_is_rejected_not_a_stack_overflow() {
        let mut src = String::from("module top (input a, output z); INVX1 u (.A(");
        for _ in 0..20_000 {
            src.push('{');
        }
        src.push('a');
        for _ in 0..20_000 {
            src.push('}');
        }
        src.push_str("), .Z(z)); endmodule");
        assert!(matches!(
            parse_module(&src),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let src = "module top (a);\ninput a\nendmodule";
        match parse_module(src) {
            Err(NetlistError::Parse {
                line, col, offset, ..
            }) => {
                assert_eq!(line, 3);
                // Points at `endmodule`, where `;` was expected.
                assert_eq!(col, 1);
                assert_eq!(offset, 24);
                assert_eq!(&src[offset..offset + 9], "endmodule");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_module_names_are_an_error_not_a_panic() {
        let src = "module m (input a); endmodule\nmodule m (input b); endmodule";
        assert!(matches!(
            parse_design(src),
            Err(NetlistError::DuplicateName { kind: "module", .. })
        ));
        // Also on the forced-parallel path.
        assert!(matches!(
            parse_design_jobs(src, Some(4)),
            Err(NetlistError::DuplicateName { kind: "module", .. })
        ));
    }

    #[test]
    fn parallel_parse_matches_serial_parse() {
        let mut src = String::new();
        for mi in 0..6 {
            let _ = writeln!(src, "module m{mi} (input a, output z);");
            let _ = writeln!(src, "  wire [3:0] w;");
            for ci in 0..8 {
                let _ = writeln!(src, "  INVX1 u{ci} (.A(w[{}]), .Z(w[{}]));", ci % 4, (ci + 1) % 4);
            }
            src.push_str("  BUFX1 o (.A(w[0]), .Z(z)), o2 (.A(a), .Z(w[3]));\nendmodule\n");
        }
        let serial = parse_design_jobs(&src, Some(1)).unwrap();
        for jobs in [2, 8] {
            let par = parse_design_jobs(&src, Some(jobs)).unwrap();
            assert_eq!(
                crate::verilog::write_design(&serial),
                crate::verilog::write_design(&par),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn sources_with_escapes_fall_back_to_serial_cross_module_uniquing() {
        // Two modules escape different raw names that sanitize to the same
        // simple name: the second must be uniqued with `_e1` exactly as in
        // a serial parse (which is why escaped sources never split).
        let src = "module a (input \\x+1 ); endmodule\nmodule b (input \\x-1 ); endmodule";
        let serial = parse_design_jobs(src, Some(1)).unwrap();
        let par = parse_design_jobs(src, Some(8)).unwrap();
        assert_eq!(
            crate::verilog::write_design(&serial),
            crate::verilog::write_design(&par)
        );
        let b = par.module(par.find_module("b").unwrap());
        assert!(b.find_net("x_1_e1").is_some(), "cross-module uniquing");
    }
}
