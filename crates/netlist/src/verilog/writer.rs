//! Structural Verilog emission.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use crate::{Conn, Design, Module, PortDir};

/// Writes all modules of `design` (top first) as structural Verilog.
pub fn write_design(design: &Design) -> String {
    let mut out = String::new();
    let top = design.top();
    write_module_into(design.module(top), &mut out);
    for (id, module) in design.modules() {
        if id != top {
            out.push('\n');
            write_module_into(module, &mut out);
        }
    }
    out
}

/// Writes a single module as structural Verilog.
pub fn write_module(module: &Module) -> String {
    let mut out = String::new();
    write_module_into(module, &mut out);
    out
}

/// True if `name` is a plain Verilog identifier needing no escape.
fn is_simple_id(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
}

/// Renders an identifier, escaping it if necessary. Escaped identifiers
/// carry their mandatory trailing space.
fn id(name: &str) -> String {
    if is_simple_id(name) {
        name.to_owned()
    } else {
        format!("\\{name} ")
    }
}

/// A declaration group: either one scalar name or a contiguous bus.
#[derive(Debug)]
struct DeclGroup {
    base: String,
    /// `None` for scalars, `Some((msb, lsb))` for buses.
    range: Option<(i64, i64)>,
}

/// Groups names (in first-seen order) into scalar and bus declarations. A
/// name participates in a bus only if it has `base[idx]` form, the base is a
/// simple identifier, and no scalar of the same base name exists.
fn group_decls<'a>(names: impl Iterator<Item = &'a str>) -> Vec<DeclGroup> {
    let names: Vec<&str> = names.collect();
    let scalar_names: HashSet<&str> = names
        .iter()
        .copied()
        .filter(|n| crate::bus::parse_bus_bit(n).is_none())
        .collect();
    let mut order: Vec<String> = Vec::new();
    let mut buses: HashMap<String, (i64, i64)> = HashMap::new();
    let mut scalars: HashSet<String> = HashSet::new();
    for name in names {
        match crate::bus::parse_bus_bit(name) {
            Some((base, index)) if is_simple_id(base) && !scalar_names.contains(base) => {
                match buses.get_mut(base) {
                    Some((msb, lsb)) => {
                        *msb = (*msb).max(index);
                        *lsb = (*lsb).min(index);
                    }
                    None => {
                        buses.insert(base.to_owned(), (index, index));
                        order.push(base.to_owned());
                    }
                }
            }
            _ => {
                if scalars.insert(name.to_owned()) {
                    order.push(name.to_owned());
                }
            }
        }
    }
    order
        .into_iter()
        .map(|base| DeclGroup {
            range: buses.get(&base).copied(),
            base,
        })
        .collect()
}

fn write_module_into(module: &Module, out: &mut String) {
    let port_groups = group_decls(module.ports().map(|(_, p)| p.name));
    let _ = write!(out, "module {} (", id(&module.name));
    for (i, g) in port_groups.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&id(&g.base));
    }
    out.push_str(");\n");

    // Port direction declarations (one per group; direction taken from the
    // first member port).
    let dir_of: HashMap<&str, PortDir> = module.ports().map(|(_, p)| (p.name, p.dir)).collect();
    for g in &port_groups {
        let sample = match g.range {
            Some((msb, _)) => crate::bus::bus_bit_name(&g.base, msb),
            None => g.base.clone(),
        };
        let dir = dir_of.get(sample.as_str()).copied().unwrap_or(PortDir::Input);
        match g.range {
            Some((msb, lsb)) => {
                let _ = writeln!(out, "  {dir} [{msb}:{lsb}] {};", id(&g.base));
            }
            None => {
                let _ = writeln!(out, "  {dir} {};", id(&g.base));
            }
        }
    }

    // Wire declarations for non-port nets.
    let port_nets: HashSet<&str> = module
        .ports()
        .map(|(_, p)| module.net(p.net).name)
        .chain(module.ports().map(|(_, p)| p.name))
        .collect();
    let wire_groups = group_decls(
        module
            .nets()
            .map(|(_, n)| n.name)
            .filter(|n| !port_nets.contains(n)),
    );
    for g in &wire_groups {
        match g.range {
            Some((msb, lsb)) => {
                let _ = writeln!(out, "  wire [{msb}:{lsb}] {};", id(&g.base));
            }
            None => {
                let _ = writeln!(out, "  wire {};", id(&g.base));
            }
        }
    }

    // Residual continuous assignments: constant ties on port nets and ports
    // whose net was merged into a different net by `assign` resolution.
    let port_name_set: HashSet<&str> = module.ports().map(|(_, p)| p.name).collect();
    for &(net, value) in module.const_ties() {
        let name = module.net(net).name;
        if port_name_set.contains(name) {
            let _ = writeln!(out, "  assign {} = 1'b{};", id(name), u8::from(value));
        }
    }
    for (_, port) in module.ports() {
        let net_name = module.net(port.net).name;
        if net_name != port.name && port.dir != PortDir::Input {
            let _ = writeln!(out, "  assign {} = {};", id(port.name), id(net_name));
        }
    }

    // Instances.
    for (_, cell) in module.cells() {
        let _ = write!(out, "  {} {} (", id(cell.kind_name()), id(cell.name));
        let rendered = render_pins(module, cell);
        for (i, (pin, conn)) in rendered.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, ".{}({})", id(pin), conn);
        }
        out.push_str(");\n");
    }
    out.push_str("endmodule\n");
}

/// Renders the pin connections of a cell, re-grouping bit-blasted pins
/// (`data[1]`, `data[0]`) into a single concatenation connection.
fn render_pins(module: &Module, cell: crate::Cell<'_>) -> Vec<(String, String)> {
    let conn_text = |c: &Conn| -> String {
        match c {
            Conn::Net(n) => id(module.net(*n).name),
            Conn::Const0 => "1'b0".to_owned(),
            Conn::Const1 => "1'b1".to_owned(),
            Conn::Open => String::new(),
        }
    };
    // Collect multi-bit pin groups.
    let mut groups: HashMap<&str, Vec<(i64, String)>> = HashMap::new();
    let mut multi: HashSet<&str> = HashSet::new();
    for (i, (_, conn)) in cell.pins().iter().enumerate() {
        if let Some((base, index)) = crate::bus::parse_bus_bit(cell.pin_name(i)) {
            groups.entry(base).or_default().push((index, conn_text(conn)));
            if groups[base].len() > 1 {
                multi.insert(base);
            }
        }
    }
    let mut done: HashSet<&str> = HashSet::new();
    let mut result = Vec::new();
    for (i, (_, conn)) in cell.pins().iter().enumerate() {
        let pin = cell.pin_name(i);
        match crate::bus::parse_bus_bit(pin) {
            Some((base, _)) if multi.contains(base) => {
                if done.insert(base) {
                    let mut bits = groups.remove(base).expect("grouped above");
                    bits.sort_by_key(|(i, _)| std::cmp::Reverse(*i));
                    let concat = bits
                        .iter()
                        .map(|(_, t)| t.as_str())
                        .collect::<Vec<_>>()
                        .join(", ");
                    result.push((base.to_owned(), format!("{{{concat}}}")));
                }
            }
            _ => result.push((pin.to_owned(), conn_text(conn))),
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Design, NetlistError, PortDir};

    #[test]
    fn simple_id_detection() {
        assert!(is_simple_id("abc_123$"));
        assert!(is_simple_id("_x"));
        assert!(!is_simple_id("3x"));
        assert!(!is_simple_id("a[3]"));
        assert!(!is_simple_id(""));
        assert!(!is_simple_id("a-b"));
    }

    #[test]
    fn escaped_identifiers_get_trailing_space() {
        assert_eq!(id("a+b"), "\\a+b ");
        assert_eq!(id("plain"), "plain");
    }

    #[test]
    fn buses_are_grouped_in_declarations() -> Result<(), NetlistError> {
        let mut d = Design::new();
        let m = d.add_module("t");
        let module = d.module_mut(m);
        for i in 0..3 {
            module.add_port(format!("x[{i}]"), PortDir::Input)?;
        }
        module.add_port("y", PortDir::Output)?;
        let text = write_design(&d);
        assert!(text.contains("module t (x, y);"), "{text}");
        assert!(text.contains("input [2:0] x;"), "{text}");
        assert!(text.contains("output y;"), "{text}");
        Ok(())
    }

    #[test]
    fn multibit_instance_pins_render_as_concat() -> Result<(), NetlistError> {
        let mut d = Design::new();
        let m = d.add_module("t");
        let module = d.module_mut(m);
        let a = module.add_net("a")?;
        let b = module.add_net("b")?;
        module.add_instance(
            "u",
            "SUB",
            &[("in1[1]", Conn::Net(a)), ("in1[0]", Conn::Net(b))],
        )?;
        let text = write_design(&d);
        assert!(text.contains(".in1({a, b})"), "{text}");
        Ok(())
    }

    #[test]
    fn const_tie_on_port_is_emitted() -> Result<(), NetlistError> {
        let mut d = Design::new();
        let m = d.add_module("t");
        let module = d.module_mut(m);
        let p = module.add_port("z", PortDir::Output)?;
        let net = module.port(p).net;
        module.add_const_tie(net, true);
        let text = write_design(&d);
        assert!(text.contains("assign z = 1'b1;"), "{text}");
        Ok(())
    }

    #[test]
    fn merged_output_port_emits_alias_assign() -> Result<(), NetlistError> {
        let mut d = Design::new();
        let m = d.add_module("t");
        let module = d.module_mut(m);
        module.add_port("a", PortDir::Input)?;
        let zp = module.add_port("z", PortDir::Output)?;
        let a_net = module.find_net("a").unwrap();
        module.merge_port_net(module.port(zp).net, a_net);
        let text = write_design(&d);
        assert!(text.contains("assign z = a;"), "{text}");
        Ok(())
    }
}
