//! Structural Verilog emission.
//!
//! The writer streams every module into one preallocated output buffer:
//! identifiers are resolved from the module's symbol table and appended
//! in place ([`push_id`]), declaration grouping borrows net/port names
//! instead of copying them, and instance pins take a no-allocation fast
//! path whenever a cell has no bit-blasted (`pin[i]`) pins — the common
//! case in technology-mapped netlists. Output is byte-identical to the
//! pre-streaming writer.

use std::fmt::Write as _;

use crate::hash::{FastHashMap, FastHashSet};
use crate::{Cell, Conn, Design, Module, PortDir};

/// Writes all modules of `design` (top first) as structural Verilog.
pub fn write_design(design: &Design) -> String {
    let mut estimate = 0;
    for (_, module) in design.modules() {
        estimate += estimate_module(module);
    }
    let mut out = String::with_capacity(estimate);
    let top = design.top();
    write_module_into(design.module(top), &mut out);
    for (id, module) in design.modules() {
        if id != top {
            out.push('\n');
            write_module_into(module, &mut out);
        }
    }
    out
}

/// Writes a single module as structural Verilog.
pub fn write_module(module: &Module) -> String {
    let mut out = String::with_capacity(estimate_module(module));
    write_module_into(module, &mut out);
    out
}

/// Rough upper-bound on a module's rendered size, so the output buffer is
/// allocated once up front instead of growing through reallocation.
fn estimate_module(module: &Module) -> usize {
    module.pin_table_len() * 24
        + module.net_count() * 16
        + module.port_count() * 24
        + module.cell_count() * 32
        + 64
}

/// True if `name` is a plain Verilog identifier needing no escape.
fn is_simple_id(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
}

/// Appends an identifier, escaping it if necessary. Escaped identifiers
/// carry their mandatory trailing space.
fn push_id(out: &mut String, name: &str) {
    if is_simple_id(name) {
        out.push_str(name);
    } else {
        out.push('\\');
        out.push_str(name);
        out.push(' ');
    }
}

/// Appends a pin connection (net name, constant or nothing for open).
fn push_conn(out: &mut String, module: &Module, conn: Conn) {
    match conn {
        Conn::Net(n) => push_id(out, module.net(n).name),
        Conn::Const0 => out.push_str("1'b0"),
        Conn::Const1 => out.push_str("1'b1"),
        Conn::Open => {}
    }
}

/// A declaration group: either one scalar name or a contiguous bus. Names
/// borrow from the module's symbol table.
#[derive(Debug)]
struct DeclGroup<'a> {
    base: &'a str,
    /// `None` for scalars, `Some((msb, lsb))` for buses.
    range: Option<(i64, i64)>,
}

/// Groups names (in first-seen order) into scalar and bus declarations. A
/// name participates in a bus only if it has `base[idx]` form, the base is a
/// simple identifier, and no scalar of the same base name exists.
fn group_decls<'a>(names: impl Iterator<Item = &'a str>) -> Vec<DeclGroup<'a>> {
    let names: Vec<&str> = names.collect();
    let scalar_names: FastHashSet<&str> = names
        .iter()
        .copied()
        .filter(|n| crate::bus::parse_bus_bit(n).is_none())
        .collect();
    let mut order: Vec<&str> = Vec::new();
    let mut buses: FastHashMap<&str, (i64, i64)> = FastHashMap::default();
    let mut scalars: FastHashSet<&str> = FastHashSet::default();
    for name in names {
        match crate::bus::parse_bus_bit(name) {
            Some((base, index)) if is_simple_id(base) && !scalar_names.contains(base) => {
                match buses.get_mut(base) {
                    Some((msb, lsb)) => {
                        *msb = (*msb).max(index);
                        *lsb = (*lsb).min(index);
                    }
                    None => {
                        buses.insert(base, (index, index));
                        order.push(base);
                    }
                }
            }
            _ => {
                if scalars.insert(name) {
                    order.push(name);
                }
            }
        }
    }
    order
        .into_iter()
        .map(|base| DeclGroup {
            range: buses.get(base).copied(),
            base,
        })
        .collect()
}

fn write_module_into(module: &Module, out: &mut String) {
    let port_groups = group_decls(module.ports().map(|(_, p)| p.name));
    out.push_str("module ");
    push_id(out, &module.name);
    out.push_str(" (");
    for (i, g) in port_groups.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_id(out, g.base);
    }
    out.push_str(");\n");

    // Port direction declarations (one per group; direction taken from the
    // first member port).
    let dir_of: FastHashMap<&str, PortDir> = module.ports().map(|(_, p)| (p.name, p.dir)).collect();
    let mut sample = String::new();
    for g in &port_groups {
        let key = match g.range {
            Some((msb, _)) => {
                sample.clear();
                let _ = write!(sample, "{}[{msb}]", g.base);
                sample.as_str()
            }
            None => g.base,
        };
        let dir = dir_of.get(key).copied().unwrap_or(PortDir::Input);
        let _ = write!(out, "  {dir} ");
        if let Some((msb, lsb)) = g.range {
            let _ = write!(out, "[{msb}:{lsb}] ");
        }
        push_id(out, g.base);
        out.push_str(";\n");
    }

    // Wire declarations for non-port nets.
    let port_nets: FastHashSet<&str> = module
        .ports()
        .map(|(_, p)| module.net(p.net).name)
        .chain(module.ports().map(|(_, p)| p.name))
        .collect();
    let wire_groups = group_decls(
        module
            .nets()
            .map(|(_, n)| n.name)
            .filter(|n| !port_nets.contains(n)),
    );
    for g in &wire_groups {
        out.push_str("  wire ");
        if let Some((msb, lsb)) = g.range {
            let _ = write!(out, "[{msb}:{lsb}] ");
        }
        push_id(out, g.base);
        out.push_str(";\n");
    }

    // Residual continuous assignments: constant ties on port nets and ports
    // whose net was merged into a different net by `assign` resolution.
    let port_name_set: FastHashSet<&str> = module.ports().map(|(_, p)| p.name).collect();
    for &(net, value) in module.const_ties() {
        let name = module.net(net).name;
        if port_name_set.contains(name) {
            out.push_str("  assign ");
            push_id(out, name);
            let _ = writeln!(out, " = 1'b{};", u8::from(value));
        }
    }
    for (_, port) in module.ports() {
        let net_name = module.net(port.net).name;
        if net_name != port.name && port.dir != PortDir::Input {
            out.push_str("  assign ");
            push_id(out, port.name);
            out.push_str(" = ");
            push_id(out, net_name);
            out.push_str(";\n");
        }
    }

    // Instances.
    for (_, cell) in module.cells() {
        out.push_str("  ");
        push_id(out, cell.kind_name());
        out.push(' ');
        push_id(out, cell.name);
        out.push_str(" (");
        render_pins_into(module, &cell, out);
        out.push_str(");\n");
    }
    out.push_str("endmodule\n");
}

/// Renders the pin connections of a cell, re-grouping bit-blasted pins
/// (`data[1]`, `data[0]`) into a single concatenation connection.
///
/// Cells with no `pin[i]`-shaped pins — the overwhelmingly common case —
/// take a direct streaming path with no intermediate collections.
fn render_pins_into(module: &Module, cell: &Cell<'_>, out: &mut String) {
    let pins = cell.pins();
    let any_bus = (0..pins.len()).any(|i| crate::bus::parse_bus_bit(cell.pin_name(i)).is_some());
    if !any_bus {
        for (i, (_, conn)) in pins.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('.');
            push_id(out, cell.pin_name(i));
            out.push('(');
            push_conn(out, module, *conn);
            out.push(')');
        }
        return;
    }

    // Collect multi-bit pin groups.
    let mut groups: FastHashMap<&str, Vec<(i64, Conn)>> = FastHashMap::default();
    let mut multi: FastHashSet<&str> = FastHashSet::default();
    for (i, (_, conn)) in pins.iter().enumerate() {
        if let Some((base, index)) = crate::bus::parse_bus_bit(cell.pin_name(i)) {
            let group = groups.entry(base).or_default();
            group.push((index, *conn));
            if group.len() > 1 {
                multi.insert(base);
            }
        }
    }
    let mut done: FastHashSet<&str> = FastHashSet::default();
    let mut first = true;
    for (i, (_, conn)) in pins.iter().enumerate() {
        let pin = cell.pin_name(i);
        match crate::bus::parse_bus_bit(pin) {
            Some((base, _)) if multi.contains(base) => {
                if !done.insert(base) {
                    continue;
                }
                let Some(mut bits) = groups.remove(base) else {
                    continue;
                };
                // Stable sort: equal indices keep pin-list order.
                bits.sort_by_key(|(idx, _)| std::cmp::Reverse(*idx));
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push('.');
                push_id(out, base);
                out.push_str("({");
                for (k, (_, c)) in bits.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    push_conn(out, module, *c);
                }
                out.push_str("})");
            }
            _ => {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push('.');
                push_id(out, pin);
                out.push('(');
                push_conn(out, module, *conn);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]
    use super::*;
    use crate::{Design, NetlistError, PortDir};

    #[test]
    fn simple_id_detection() {
        assert!(is_simple_id("abc_123$"));
        assert!(is_simple_id("_x"));
        assert!(!is_simple_id("3x"));
        assert!(!is_simple_id("a[3]"));
        assert!(!is_simple_id(""));
        assert!(!is_simple_id("a-b"));
    }

    #[test]
    fn escaped_identifiers_get_trailing_space() {
        let mut out = String::new();
        push_id(&mut out, "a+b");
        assert_eq!(out, "\\a+b ");
        out.clear();
        push_id(&mut out, "plain");
        assert_eq!(out, "plain");
    }

    #[test]
    fn buses_are_grouped_in_declarations() -> Result<(), NetlistError> {
        let mut d = Design::new();
        let m = d.add_module("t");
        let module = d.module_mut(m);
        for i in 0..3 {
            module.add_port(format!("x[{i}]"), PortDir::Input)?;
        }
        module.add_port("y", PortDir::Output)?;
        let text = write_design(&d);
        assert!(text.contains("module t (x, y);"), "{text}");
        assert!(text.contains("input [2:0] x;"), "{text}");
        assert!(text.contains("output y;"), "{text}");
        Ok(())
    }

    #[test]
    fn multibit_instance_pins_render_as_concat() -> Result<(), NetlistError> {
        let mut d = Design::new();
        let m = d.add_module("t");
        let module = d.module_mut(m);
        let a = module.add_net("a")?;
        let b = module.add_net("b")?;
        module.add_instance(
            "u",
            "SUB",
            &[("in1[1]", Conn::Net(a)), ("in1[0]", Conn::Net(b))],
        )?;
        let text = write_design(&d);
        assert!(text.contains(".in1({a, b})"), "{text}");
        Ok(())
    }

    #[test]
    fn const_tie_on_port_is_emitted() -> Result<(), NetlistError> {
        let mut d = Design::new();
        let m = d.add_module("t");
        let module = d.module_mut(m);
        let p = module.add_port("z", PortDir::Output)?;
        let net = module.port(p).net;
        module.add_const_tie(net, true);
        let text = write_design(&d);
        assert!(text.contains("assign z = 1'b1;"), "{text}");
        Ok(())
    }

    #[test]
    fn merged_output_port_emits_alias_assign() -> Result<(), NetlistError> {
        let mut d = Design::new();
        let m = d.add_module("t");
        let module = d.module_mut(m);
        module.add_port("a", PortDir::Input)?;
        let zp = module.add_port("z", PortDir::Output)?;
        let a_net = module.find_net("a").unwrap();
        module.merge_port_net(module.port(zp).net, a_net);
        let text = write_design(&d);
        assert!(text.contains("assign z = a;"), "{text}");
        Ok(())
    }

    #[test]
    fn single_bus_pin_is_not_grouped() -> Result<(), NetlistError> {
        let mut d = Design::new();
        let m = d.add_module("t");
        let module = d.module_mut(m);
        let a = module.add_net("a")?;
        module.add_instance("u", "SUB", &[("in1[0]", Conn::Net(a))])?;
        let text = write_design(&d);
        // Stays a single named pin (escaped — brackets are not simple-id
        // characters) rather than collapsing into a one-bit concat.
        assert!(text.contains(".\\in1[0] (a)"), "{text}");
        Ok(())
    }
}
