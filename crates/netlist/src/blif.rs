//! BLIF export (for SIS interoperability, §3.2.7).
//!
//! Cells are written as `.gate` lines against the technology library.
//! Constant connections are routed through `$false` / `$true` nets defined
//! with `.names` as BLIF has no constant literals.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::{Conn, Module, PortDir};

/// Writes `module` in BLIF format.
pub fn write_blif(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", module.name);

    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for (_, p) in module.ports() {
        match p.dir {
            PortDir::Input => inputs.push(p.name),
            PortDir::Output | PortDir::Inout => outputs.push(p.name),
        }
    }
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));

    let mut used_consts: HashSet<bool> = HashSet::new();
    let mut gate_lines = String::new();
    for (_, cell) in module.cells() {
        let _ = write!(gate_lines, ".gate {}", cell.kind_name());
        for (i, (_, conn)) in cell.pins().iter().enumerate() {
            let pin = cell.pin_name(i);
            match conn {
                Conn::Net(n) => {
                    let _ = write!(gate_lines, " {}={}", pin, module.net(*n).name);
                }
                Conn::Const0 => {
                    used_consts.insert(false);
                    let _ = write!(gate_lines, " {pin}=$false");
                }
                Conn::Const1 => {
                    used_consts.insert(true);
                    let _ = write!(gate_lines, " {pin}=$true");
                }
                Conn::Open => {}
            }
        }
        gate_lines.push('\n');
    }
    for &(net, value) in module.const_ties() {
        used_consts.insert(value);
        let src = if value { "$true" } else { "$false" };
        let _ = writeln!(
            gate_lines,
            ".names {} {}\n1 1",
            src,
            module.net(net).name
        );
    }
    if used_consts.contains(&false) {
        out.push_str(".names $false\n");
    }
    if used_consts.contains(&true) {
        out.push_str(".names $true\n1\n");
    }
    out.push_str(&gate_lines);
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Design, NetlistError};

    #[test]
    fn blif_structure() -> Result<(), NetlistError> {
        let mut d = Design::new();
        let m = d.add_module("top");
        let module = d.module_mut(m);
        module.add_port("a", PortDir::Input)?;
        module.add_port("z", PortDir::Output)?;
        let a = module.find_net("a").unwrap();
        let z = module.find_net("z").unwrap();
        module.add_cell(
            "u1",
            "NAND2X1",
            &[("A", Conn::Net(a)), ("B", Conn::Const1), ("Z", Conn::Net(z))],
        )?;
        let blif = write_blif(d.module(m));
        assert!(blif.starts_with(".model top\n"));
        assert!(blif.contains(".inputs a"));
        assert!(blif.contains(".outputs z"));
        assert!(blif.contains(".gate NAND2X1 A=a B=$true Z=z"));
        assert!(blif.contains(".names $true\n1\n"));
        assert!(blif.ends_with(".end\n"));
        Ok(())
    }

    #[test]
    fn open_pins_are_omitted() -> Result<(), NetlistError> {
        let mut d = Design::new();
        let m = d.add_module("top");
        let module = d.module_mut(m);
        let a = module.add_net("a")?;
        module.add_cell("u", "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Open)])?;
        let blif = write_blif(d.module(m));
        assert!(blif.contains(".gate INVX1 A=a\n"));
        Ok(())
    }
}
