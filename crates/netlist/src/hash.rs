//! Fast, deterministic hashing for name-keyed maps.
//!
//! The default `std` hasher (SipHash with a random seed) is designed to
//! resist hash-flooding from untrusted keys, but it costs tens of
//! nanoseconds per short string — and netlist names are hashed millions of
//! times during parse/write. [`FastHasher`] is a word-at-a-time
//! multiply-xor hasher in the rustc-hash family: a few nanoseconds for a
//! typical net name, unseeded and therefore deterministic run to run
//! (map *lookups* don't depend on iteration order anyway; nothing in the
//! crate iterates these maps for output).
//!
//! Flooding resistance is deliberately traded away: the maps keyed with
//! this hasher hold netlist names, and the hostile-input gates
//! (`bench/src/bin/hostile.rs`, the fuzz corpus) bound what an adversarial
//! netlist can do — worst case is a slow parse, never unsoundness.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier with high bit dispersion (the golden-ratio constant familiar
/// from Fibonacci hashing, oddified).
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// A word-folding multiply-xor hasher. Not flooding-resistant; see the
/// module docs for why that is acceptable here.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(26) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(buf));
        }
        // Fold the length so `"a"` and `"a\0"` (same padded word) differ.
        self.fold(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // `HashMap` derives its bucket from the high bits; one final mix
        // spreads low-entropy tails (e.g. trailing length words) upward.
        self.hash.rotate_left(20).wrapping_mul(K)
    }
}

/// 128-bit content hash of a byte stream: two independently-seeded
/// [`FastHasher`] lanes folded over the same bytes. Deterministic across
/// runs and processes (no random seed), so it is usable as a persistent
/// cache key; two lanes push accidental collisions far below anything a
/// flow cache holding thousands of netlists can hit. Not
/// collision-resistant against an adversary — callers that cache on this
/// key trade that away exactly like the name maps above do.
pub fn content_hash128(bytes: &[u8]) -> u128 {
    let mut a = FastHasher { hash: 0xC0DE_CAFE_0000_0001 };
    let mut b = FastHasher { hash: 0x5EED_FACE_0000_0002 };
    a.write(bytes);
    b.write(bytes);
    (u128::from(a.finish()) << 64) | u128::from(b.finish())
}

/// [`content_hash128`] rendered as a fixed-width lowercase hex string —
/// the wire/report form of the cache key.
pub fn content_hash_hex(bytes: &[u8]) -> String {
    format!("{:032x}", content_hash128(bytes))
}

/// Deterministic (unseeded) builder for [`FastHasher`].
pub type BuildFastHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildFastHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, BuildFastHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        BuildFastHasher::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal_and_runs_are_deterministic() {
        assert_eq!(hash_of("n_romb_3988"), hash_of("n_romb_3988"));
        assert_eq!(hash_of(42u64), hash_of(42u64));
    }

    #[test]
    fn near_identical_names_disperse() {
        // Netlist names differ in a trailing counter; buckets must too.
        let hashes: FastHashSet<u64> = (0..10_000)
            .map(|i| hash_of(format!("drd_g{}_net_{i}", i % 97)))
            .collect();
        assert_eq!(hashes.len(), 10_000);
        // Padding bytes must not collide with real zeros.
        assert_ne!(hash_of("a"), hash_of("a\0"));
    }

    #[test]
    fn content_hash_is_stable_wide_and_sensitive() {
        let v = b"module t (clk); endmodule\n";
        assert_eq!(content_hash128(v), content_hash128(v));
        assert_ne!(content_hash128(v), content_hash128(b"module t (clk); endmodule"));
        assert_ne!(content_hash128(b""), content_hash128(b"\0"));
        let hex = content_hash_hex(v);
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        // The two lanes are independent: flipping one byte changes both
        // halves of the rendered key.
        let other = content_hash_hex(b"module u (clk); endmodule\n");
        assert_ne!(hex[..16], other[..16]);
        assert_ne!(hex[16..], other[16..]);
    }

    #[test]
    fn maps_behave_like_std_maps() {
        let mut m: FastHashMap<String, u32> = FastHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("net_{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get("net_500"), Some(&500));
        assert_eq!(m.get("net_1000"), None);
    }
}
