//! Typed index handles into a [`crate::Module`] / [`crate::Design`].
//!
//! Newtype indices (C-NEWTYPE) prevent mixing net, cell, port and module
//! identifier spaces at compile time. Each id is a dense `u32` index into the
//! owning container, so lookups are O(1) and ids are `Copy`.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw dense index.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $name(index as u32)
            }

            /// Returns the raw dense index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Handle to a [`crate::Net`] inside a module.
    NetId,
    "n"
);
define_id!(
    /// Handle to a [`crate::Cell`] (instance) inside a module.
    CellId,
    "c"
);
define_id!(
    /// Handle to a [`crate::Port`] of a module.
    PortId,
    "p"
);
define_id!(
    /// Handle to a [`crate::Module`] inside a design.
    ModuleId,
    "m"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = NetId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = CellId::from_index(1);
        let b = CellId::from_index(2);
        assert!(a < b);
        let set: HashSet<CellId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
