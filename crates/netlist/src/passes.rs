//! Generic netlist cleaning passes.
//!
//! The desynchronizer's grouping algorithm requires "clean logic", free of
//! buffers and inverter pairs inserted by synthesis for signal buffering,
//! because such cells induce *false* logic dependencies between regions
//! (§3.2.2, Fig. 3.5). These passes are library-agnostic: the caller
//! supplies a classifier describing which cells are buffers/inverters.

use std::collections::HashMap;

use crate::{Cell, CellId, Conn, Module, NetId, PinDirs};

/// Classification of a cell for the cleaning passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CleanKind {
    /// A non-inverting buffer: `output = input`.
    Buffer {
        /// Name of the input pin.
        input: String,
        /// Name of the output pin.
        output: String,
    },
    /// An inverter: `output = !input`.
    Inverter {
        /// Name of the input pin.
        input: String,
        /// Name of the output pin.
        output: String,
    },
}

/// Statistics returned by [`clean_logic`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanStats {
    /// Buffers removed.
    pub buffers_removed: usize,
    /// Inverter *pairs* removed (2 cells per pair).
    pub inverter_pairs_removed: usize,
}

/// Removes buffers and back-to-back inverter pairs, rewiring their fanout to
/// the original source signal. Buffers driving module ports are kept so
/// every port stays driven.
///
/// Returns how many cells were eliminated. Runs to fixpoint.
pub fn clean_logic(
    module: &mut Module,
    dirs: &impl PinDirs,
    classify: impl Fn(Cell<'_>) -> Option<CleanKind>,
) -> CleanStats {
    let mut stats = CleanStats::default();
    loop {
        let Ok(conn) = module.connectivity(dirs) else {
            // Inconsistent netlist: leave it to the caller's validation.
            return stats;
        };
        let port_nets: std::collections::HashSet<NetId> =
            module.ports().map(|(_, p)| p.net).collect();

        let mut remap: HashMap<NetId, Conn> = HashMap::new();
        let mut removed: Vec<CellId> = Vec::new();
        let mut touched: std::collections::HashSet<CellId> = std::collections::HashSet::new();

        for (cid, cell) in module.cells() {
            if touched.contains(&cid) {
                continue;
            }
            match classify(cell) {
                Some(CleanKind::Buffer { input, output }) => {
                    let Some(Conn::Net(out_net)) = cell.pin(&output) else {
                        continue;
                    };
                    if port_nets.contains(&out_net) || remap.contains_key(&out_net) {
                        continue;
                    }
                    let Some(in_conn) = cell.pin(&input) else {
                        continue;
                    };
                    if let Conn::Net(in_net) = in_conn {
                        if remap.contains_key(&in_net) {
                            continue;
                        }
                    }
                    remap.insert(out_net, in_conn);
                    removed.push(cid);
                    touched.insert(cid);
                    stats.buffers_removed += 1;
                }
                Some(CleanKind::Inverter { input, output }) => {
                    // Look for inverter pairs: this inverter's output feeds
                    // exactly one load which is another inverter.
                    let Some(Conn::Net(mid_net)) = cell.pin(&output) else {
                        continue;
                    };
                    if port_nets.contains(&mid_net) || remap.contains_key(&mid_net) {
                        continue;
                    }
                    let loads = conn.loads(mid_net);
                    if loads.len() != 1 {
                        continue;
                    }
                    let crate::Endpoint::Pin(pin_use) = loads[0] else {
                        continue;
                    };
                    if touched.contains(&pin_use.cell) || pin_use.cell == cid {
                        continue;
                    }
                    let second = module.cell(pin_use.cell);
                    let Some(CleanKind::Inverter {
                        input: in2,
                        output: out2,
                    }) = classify(second)
                    else {
                        continue;
                    };
                    // The mid net must enter the second inverter's input pin.
                    if second.pin_name(pin_use.pin as usize) != in2 {
                        continue;
                    }
                    let Some(Conn::Net(out_net)) = second.pin(&out2) else {
                        continue;
                    };
                    if port_nets.contains(&out_net) || remap.contains_key(&out_net) {
                        continue;
                    }
                    let Some(in_conn) = cell.pin(&input) else {
                        continue;
                    };
                    if let Conn::Net(in_net) = in_conn {
                        if remap.contains_key(&in_net) {
                            continue;
                        }
                    }
                    remap.insert(out_net, in_conn);
                    removed.push(cid);
                    removed.push(pin_use.cell);
                    touched.insert(cid);
                    touched.insert(pin_use.cell);
                    stats.inverter_pairs_removed += 1;
                }
                None => {}
            }
        }

        if removed.is_empty() {
            return stats;
        }
        module.rewire_many(&remap);
        for cid in removed {
            module.remove_cell(cid);
        }
    }
}

/// Removes cells none of whose outputs reach any load (transitively), while
/// keeping every cell for which `keep` returns true.
///
/// Returns the number of cells swept.
pub fn sweep_dangling(
    module: &mut Module,
    dirs: &impl PinDirs,
    keep: impl Fn(Cell<'_>) -> bool,
) -> usize {
    let mut swept = 0;
    loop {
        let Ok(conn) = module.connectivity(dirs) else {
            return swept;
        };
        let mut removed = Vec::new();
        for (cid, cell) in module.cells() {
            if keep(cell) {
                continue;
            }
            let mut has_load = false;
            let mut has_output = false;
            for (idx, (_, c)) in cell.pins().iter().enumerate() {
                let Conn::Net(net) = c else { continue };
                // Is this pin the driver of `net`?
                let driving = conn.driver(*net)
                    == Some(crate::Endpoint::Pin(crate::PinUse {
                        cell: cid,
                        pin: idx as u32,
                    }));
                if driving {
                    has_output = true;
                    if !conn.loads(*net).is_empty() {
                        has_load = true;
                        break;
                    }
                }
            }
            if has_output && !has_load {
                removed.push(cid);
            }
        }
        if removed.is_empty() {
            return swept;
        }
        swept += removed.len();
        for cid in removed {
            module.remove_cell(cid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KindRef, PortDir};

    fn dirs(_: KindRef<'_>, pin: &str) -> Option<PortDir> {
        Some(match pin {
            "Z" | "Q" => PortDir::Output,
            _ => PortDir::Input,
        })
    }

    fn classify(cell: Cell<'_>) -> Option<CleanKind> {
        match cell.kind_name() {
            "BUFX1" => Some(CleanKind::Buffer {
                input: "A".into(),
                output: "Z".into(),
            }),
            "INVX1" => Some(CleanKind::Inverter {
                input: "A".into(),
                output: "Z".into(),
            }),
            _ => None,
        }
    }

    #[test]
    fn buffer_chain_is_collapsed() {
        let mut m = Module::new("t");
        m.add_port("a", PortDir::Input).unwrap();
        m.add_port("z", PortDir::Output).unwrap();
        let a = m.find_net("a").unwrap();
        let z = m.find_net("z").unwrap();
        let b1 = m.add_net("b1").unwrap();
        let b2 = m.add_net("b2").unwrap();
        m.add_cell("u1", "BUFX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(b1))])
            .unwrap();
        m.add_cell("u2", "BUFX1", &[("A", Conn::Net(b1)), ("Z", Conn::Net(b2))])
            .unwrap();
        m.add_cell(
            "g",
            "NAND2X1",
            &[("A", Conn::Net(b2)), ("B", Conn::Net(a)), ("Z", Conn::Net(z))],
        )
        .unwrap();
        let stats = clean_logic(&mut m, &dirs, classify);
        assert_eq!(stats.buffers_removed, 2);
        assert_eq!(m.cell_count(), 1);
        let g = m.find_cell("g").unwrap();
        assert_eq!(m.cell(g).pin("A"), Some(Conn::Net(a)));
    }

    #[test]
    fn inverter_pair_is_removed_but_single_inverter_kept() {
        let mut m = Module::new("t");
        m.add_port("a", PortDir::Input).unwrap();
        m.add_port("z", PortDir::Output).unwrap();
        m.add_port("y", PortDir::Output).unwrap();
        let a = m.find_net("a").unwrap();
        let z = m.find_net("z").unwrap();
        let y = m.find_net("y").unwrap();
        let n1 = m.add_net("n1").unwrap();
        let n2 = m.add_net("n2").unwrap();
        m.add_cell("i1", "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(n1))])
            .unwrap();
        m.add_cell("i2", "INVX1", &[("A", Conn::Net(n1)), ("Z", Conn::Net(n2))])
            .unwrap();
        m.add_cell(
            "g",
            "NAND2X1",
            &[("A", Conn::Net(n2)), ("B", Conn::Net(a)), ("Z", Conn::Net(z))],
        )
        .unwrap();
        // A lone inverter driving a port must survive.
        m.add_cell("i3", "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(y))])
            .unwrap();
        let stats = clean_logic(&mut m, &dirs, classify);
        assert_eq!(stats.inverter_pairs_removed, 1);
        assert!(m.find_cell("i3").is_some());
        let g = m.find_cell("g").unwrap();
        assert_eq!(m.cell(g).pin("A"), Some(Conn::Net(a)));
    }

    #[test]
    fn buffer_driving_port_survives() {
        let mut m = Module::new("t");
        m.add_port("a", PortDir::Input).unwrap();
        m.add_port("z", PortDir::Output).unwrap();
        let a = m.find_net("a").unwrap();
        let z = m.find_net("z").unwrap();
        m.add_cell("u", "BUFX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(z))])
            .unwrap();
        let stats = clean_logic(&mut m, &dirs, classify);
        assert_eq!(stats.buffers_removed, 0);
        assert_eq!(m.cell_count(), 1);
    }

    #[test]
    fn sweep_removes_transitively_dangling() {
        let mut m = Module::new("t");
        m.add_port("a", PortDir::Input).unwrap();
        let a = m.find_net("a").unwrap();
        let n1 = m.add_net("n1").unwrap();
        let n2 = m.add_net("n2").unwrap();
        m.add_cell("u1", "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(n1))])
            .unwrap();
        m.add_cell("u2", "INVX1", &[("A", Conn::Net(n1)), ("Z", Conn::Net(n2))])
            .unwrap();
        let swept = sweep_dangling(&mut m, &dirs, |_| false);
        assert_eq!(swept, 2);
        assert_eq!(m.cell_count(), 0);
    }

    #[test]
    fn sweep_respects_keep() {
        let mut m = Module::new("t");
        let a = m.add_net("a").unwrap();
        let n = m.add_net("n").unwrap();
        m.add_cell("u", "DFFX1", &[("D", Conn::Net(a)), ("Q", Conn::Net(n))])
            .unwrap();
        let swept = sweep_dangling(&mut m, &dirs, |c| c.kind_name().starts_with("DFF"));
        assert_eq!(swept, 0);
        assert_eq!(m.cell_count(), 1);
    }
}
