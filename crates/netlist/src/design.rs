//! A design: a collection of modules with one designated top.

use std::collections::HashMap;

use crate::{KindRef, Module, ModuleId, NetlistError, PinDirs, PortDir};

/// A multi-module design (hierarchy is shallow: submodules are used for
/// generated blocks such as latch controllers and composite latches).
#[derive(Debug, Clone, Default)]
pub struct Design {
    modules: Vec<Module>,
    names: HashMap<String, ModuleId>,
    top: Option<ModuleId>,
}

impl Design {
    /// Creates an empty design.
    pub fn new() -> Self {
        Design::default()
    }

    /// Adds a fresh empty module named `name` and returns its id.
    ///
    /// The first module added becomes the top module. If `name` collides
    /// with an existing module, a unique suffix is appended.
    pub fn add_module(&mut self, name: impl Into<String>) -> ModuleId {
        let mut name = name.into();
        while self.names.contains_key(&name) {
            name.push('_');
        }
        self.insert(Module::new(name))
    }

    /// Moves an already-built module into the design and returns its id.
    ///
    /// # Panics
    /// Panics if a module of the same name already exists.
    pub fn insert(&mut self, module: Module) -> ModuleId {
        assert!(
            !self.names.contains_key(&module.name),
            "duplicate module name `{}`",
            module.name
        );
        let id = ModuleId::from_index(self.modules.len());
        self.names.insert(module.name.clone(), id);
        self.modules.push(module);
        if self.top.is_none() {
            self.top = Some(id);
        }
        id
    }

    /// Returns the module with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Returns the module with id `id`, mutably.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn module_mut(&mut self, id: ModuleId) -> &mut Module {
        &mut self.modules[id.index()]
    }

    /// Looks a module up by name.
    pub fn find_module(&self, name: &str) -> Option<ModuleId> {
        self.names.get(name).copied()
    }

    /// Iterates over all modules as `(id, module)`.
    pub fn modules(&self) -> impl Iterator<Item = (ModuleId, &Module)> {
        self.modules
            .iter()
            .enumerate()
            .map(|(i, m)| (ModuleId::from_index(i), m))
    }

    /// The designated top module.
    ///
    /// # Panics
    /// Panics if the design is empty.
    pub fn top(&self) -> ModuleId {
        self.top.expect("design has no modules")
    }

    /// Returns the top module by reference.
    ///
    /// # Panics
    /// Panics if the design is empty.
    pub fn top_module(&self) -> &Module {
        self.module(self.top())
    }

    /// Returns the top module mutably.
    ///
    /// # Panics
    /// Panics if the design is empty.
    pub fn top_module_mut(&mut self) -> &mut Module {
        let id = self.top();
        self.module_mut(id)
    }

    /// Re-designates which module is top.
    ///
    /// # Errors
    /// Returns [`NetlistError::UnknownName`] if no module is named `name`.
    pub fn set_top(&mut self, name: &str) -> Result<ModuleId, NetlistError> {
        let id = self
            .find_module(name)
            .ok_or_else(|| NetlistError::UnknownName {
                kind: "module",
                name: name.to_owned(),
            })?;
        self.top = Some(id);
        Ok(id)
    }

    /// Wraps a library pin-direction resolver so that pins of module
    /// instances resolve through the instantiated module's port list.
    pub fn pin_dirs<'a, L: PinDirs>(&'a self, lib: &'a L) -> DesignPinDirs<'a, L> {
        DesignPinDirs { design: self, lib }
    }
}

/// [`PinDirs`] resolver that understands both library cells (via `lib`) and
/// module instances (via the design's module port declarations).
#[derive(Debug, Clone, Copy)]
pub struct DesignPinDirs<'a, L> {
    design: &'a Design,
    lib: &'a L,
}

impl<L: PinDirs> PinDirs for DesignPinDirs<'_, L> {
    fn pin_dir(&self, kind: KindRef<'_>, pin: &str) -> Option<PortDir> {
        match kind {
            KindRef::Lib(_) => self.lib.pin_dir(kind, pin),
            KindRef::Instance(module) => {
                let m = self.design.find_module(module)?;
                let m = self.design.module(m);
                let p = m.find_port(pin)?;
                Some(m.port(p).dir)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Conn;

    #[test]
    fn first_module_is_top() {
        let mut d = Design::new();
        let a = d.add_module("a");
        let _b = d.add_module("b");
        assert_eq!(d.top(), a);
        d.set_top("b").unwrap();
        assert_eq!(d.top_module().name, "b");
        assert!(d.set_top("missing").is_err());
    }

    #[test]
    fn duplicate_module_names_get_suffixed() {
        let mut d = Design::new();
        d.add_module("m");
        let second = d.add_module("m");
        assert_ne!(d.module(second).name, "m");
    }

    #[test]
    fn instance_pin_dirs_resolve_via_ports() {
        let mut d = Design::new();
        let top = d.add_module("top");
        let sub = d.add_module("sub");
        d.module_mut(sub).add_port("in1", PortDir::Input).unwrap();
        d.module_mut(sub)
            .add_port("out1", PortDir::Output)
            .unwrap();
        let n1 = d.module_mut(top).add_net("n1").unwrap();
        let n2 = d.module_mut(top).add_net("n2").unwrap();
        d.module_mut(top)
            .add_instance(
                "u_sub",
                "sub",
                &[("in1", Conn::Net(n1)), ("out1", Conn::Net(n2))],
            )
            .unwrap();

        let lib = |_: KindRef<'_>, _: &str| -> Option<PortDir> { None };
        let dirs = d.pin_dirs(&lib);
        let conn = d.module(top).connectivity(&dirs).unwrap();
        assert!(conn.driver(n2).is_some());
        assert_eq!(conn.loads(n1).len(), 1);
    }
}
