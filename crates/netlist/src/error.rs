//! Error type shared by netlist construction, editing and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, editing or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net, cell, port or module name was declared twice in one scope.
    DuplicateName {
        /// What kind of object collided ("net", "cell", "port", "module").
        kind: &'static str,
        /// The colliding name.
        name: String,
    },
    /// A name lookup failed.
    UnknownName {
        /// What kind of object was looked up.
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// Two different cells (or a cell and a port) drive the same net.
    MultipleDrivers {
        /// Name of the multiply-driven net.
        net: String,
    },
    /// A syntax error from the structural Verilog reader.
    ///
    /// The span points at the token where the error was detected in the
    /// *borrowed input buffer*: `offset` is the byte offset, `line`/`col`
    /// the 1-based position derived from it. Producers that only know a
    /// line (e.g. the legacy front end) set `col` and `offset` to 0;
    /// [`std::fmt::Display`] then omits them.
    Parse {
        /// 1-based line where the error was detected.
        line: usize,
        /// 1-based character column within the line (0 if unknown).
        col: usize,
        /// Byte offset of the offending token in the input (0 if unknown).
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A structurally valid construct that this subset does not support.
    Unsupported {
        /// 1-based line where the construct appeared (0 if not from a file).
        line: usize,
        /// Description of the unsupported construct.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            NetlistError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} `{name}`")
            }
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            NetlistError::Parse {
                line,
                col,
                offset: _,
                message,
            } => {
                if *col > 0 {
                    write!(f, "parse error at line {line}:{col}: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            NetlistError::Unsupported { line, message } => {
                write!(f, "unsupported construct at line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = NetlistError::DuplicateName {
            kind: "net",
            name: "clk".into(),
        };
        assert_eq!(e.to_string(), "duplicate net name `clk`");
        let e = NetlistError::Parse {
            line: 3,
            col: 0,
            offset: 0,
            message: "expected `;`".into(),
        };
        assert!(e.to_string().contains("line 3"));
        // With a known column the span is printed as line:col.
        let e = NetlistError::Parse {
            line: 3,
            col: 7,
            offset: 42,
            message: "expected `;`".into(),
        };
        assert!(e.to_string().contains("line 3:7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<NetlistError>();
    }
}
