//! Error type shared by netlist construction, editing and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, editing or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net, cell, port or module name was declared twice in one scope.
    DuplicateName {
        /// What kind of object collided ("net", "cell", "port", "module").
        kind: &'static str,
        /// The colliding name.
        name: String,
    },
    /// A name lookup failed.
    UnknownName {
        /// What kind of object was looked up.
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// Two different cells (or a cell and a port) drive the same net.
    MultipleDrivers {
        /// Name of the multiply-driven net.
        net: String,
    },
    /// A syntax error from the structural Verilog reader.
    Parse {
        /// 1-based line where the error was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A structurally valid construct that this subset does not support.
    Unsupported {
        /// 1-based line where the construct appeared (0 if not from a file).
        line: usize,
        /// Description of the unsupported construct.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            NetlistError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} `{name}`")
            }
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::Unsupported { line, message } => {
                write!(f, "unsupported construct at line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = NetlistError::DuplicateName {
            kind: "net",
            name: "clk".into(),
        };
        assert_eq!(e.to_string(), "duplicate net name `clk`");
        let e = NetlistError::Parse {
            line: 3,
            message: "expected `;`".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<NetlistError>();
    }
}
