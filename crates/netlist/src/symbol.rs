//! String interning for netlist names.
//!
//! Every name in a [`crate::Module`] — nets, cells, ports, pins, referenced
//! library cells and submodules — is stored once in a [`SymbolTable`] and
//! referenced by a dense [`Symbol`] id. Passes compare and hash `u32`s;
//! the strings themselves are resolved only at the parse/write/report
//! boundaries.
//!
//! The table also hosts the per-prefix next-counter cache behind
//! `unique_net_name`/`unique_cell_name`: minting a run of `prefix_N` names
//! no longer re-probes the whole taken range on every call (which made
//! name minting quadratic when the input netlist already contained a
//! dense `prefix_N` range).

use std::sync::Arc;

use crate::hash::FastHashMap;

/// An interned name: a dense index into a [`SymbolTable`].
///
/// `Symbol`s are only meaningful relative to the table (in practice: the
/// module) that produced them; moving names across modules goes through
/// [`SymbolTable::resolve`] + re-interning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a symbol from [`Symbol::index`].
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        Symbol(i as u32)
    }
}

/// Namespace tag for the unique-name counter cache.
///
/// Net and cell names live in independent uniqueness domains, so the
/// cached next-counter for a prefix must too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UniqueSpace {
    /// Net-name uniquing.
    Net,
    /// Cell-name uniquing.
    Cell,
}

#[derive(Debug, Clone)]
struct UniqueHint {
    /// Epoch at which the hint was recorded (see [`SymbolTable::bump_epoch`]).
    epoch: u64,
    /// Probe from this counter value; everything below was taken when the
    /// hint was recorded.
    start: usize,
}

/// An append-only interner mapping names to dense [`Symbol`] ids.
///
/// Names are stored as `Arc<str>`, so a clone of the table (e.g. for the
/// simulator) costs one refcount bump per name, not a reallocation. The
/// lookup side is a hand-rolled open-addressed probe table over the name
/// vector with the hash of every name memoized: an intern hit is one fast
/// hash plus (usually) one probe, an intern miss inserts without
/// re-hashing, and growing rehashes nothing — this is the hottest loop of
/// the streaming Verilog front end, where every identifier occurrence in
/// the source buffer lands.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<Arc<str>>,
    /// Memoized hash of each name, indexed like `names`.
    hashes: Vec<u64>,
    /// Open-addressed (linear probe) index: bucket → symbol index, with
    /// [`EMPTY`] for free buckets. Length is always a power of two (or 0
    /// for a never-used table); grown at 3/4 load.
    buckets: Vec<u32>,
    /// `(namespace, prefix symbol)` → probe-start hint for `prefix_{N}`
    /// uniquing. Hints are advisory: a stale hint (epoch mismatch after
    /// names were freed) falls back to the caller's base counter.
    unique_hints: FastHashMap<(UniqueSpace, Symbol), UniqueHint>,
    /// Bumped whenever a previously-taken name becomes free again
    /// (cell removal); invalidates all hints recorded before.
    epoch: u64,
}

/// Free-bucket sentinel. Symbol indices are bounded well below it by the
/// grow policy (the table would exceed memory long before 2^32 names).
const EMPTY: u32 = u32::MAX;

#[inline]
fn hash_name(name: &str) -> u64 {
    use std::hash::Hasher as _;
    let mut h = crate::hash::FastHasher::default();
    h.write(name.as_bytes());
    h.finish()
}

impl SymbolTable {
    /// An empty table sized for `capacity` names.
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets = (capacity * 4 / 3 + 1).next_power_of_two().max(16);
        SymbolTable {
            names: Vec::with_capacity(capacity),
            hashes: Vec::with_capacity(capacity),
            buckets: vec![EMPTY; buckets],
            unique_hints: FastHashMap::default(),
            epoch: 0,
        }
    }

    /// Interns `name`, returning its (new or existing) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if self.buckets.is_empty() {
            self.buckets = vec![EMPTY; 16];
        }
        let hash = hash_name(name);
        let mask = self.buckets.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.buckets[i];
            if slot == EMPTY {
                break;
            }
            let s = slot as usize;
            if self.hashes[s] == hash && &*self.names[s] == name {
                return Symbol(slot);
            }
            i = (i + 1) & mask;
        }
        let sym = Symbol::from_index(self.names.len());
        self.names.push(Arc::from(name));
        self.hashes.push(hash);
        self.buckets[i] = sym.0;
        if self.names.len() * 4 >= self.buckets.len() * 3 {
            self.grow();
        }
        sym
    }

    /// Doubles the bucket array, re-placing every symbol by its memoized
    /// hash (no string is re-hashed).
    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        let mask = new_len - 1;
        let mut buckets = vec![EMPTY; new_len];
        for (s, &hash) in self.hashes.iter().enumerate() {
            let mut i = (hash as usize) & mask;
            while buckets[i] != EMPTY {
                i = (i + 1) & mask;
            }
            buckets[i] = s as u32;
        }
        self.buckets = buckets;
    }

    /// The symbol of `name`, if already interned.
    #[inline]
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        if self.buckets.is_empty() {
            return None;
        }
        let hash = hash_name(name);
        let mask = self.buckets.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.buckets[i];
            if slot == EMPTY {
                return None;
            }
            let s = slot as usize;
            if self.hashes[s] == hash && &*self.names[s] == name {
                return Some(Symbol(slot));
            }
            i = (i + 1) & mask;
        }
    }

    /// The string of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` came from a different table.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// The string of `sym` as a shared handle (one refcount bump), for
    /// callers that need the name while mutating the table.
    ///
    /// # Panics
    /// Panics if `sym` came from a different table.
    #[inline]
    pub fn resolve_arc(&self, sym: Symbol) -> Arc<str> {
        Arc::clone(&self.names[sym.index()])
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Invalidates all unique-name hints (a taken name became free).
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Probe-start counter for uniquing `prefix` in `space`, never below
    /// `base`. Returns `base` when no (valid) hint exists.
    pub fn unique_start(&self, space: UniqueSpace, prefix: &str, base: usize) -> usize {
        let Some(sym) = self.lookup(prefix) else { return base };
        match self.unique_hints.get(&(space, sym)) {
            Some(h) if h.epoch == self.epoch => base.max(h.start),
            _ => base,
        }
    }

    /// Records that uniquing `prefix` in `space` settled on counter value
    /// `found`: every counter below it is taken, so later probes may start
    /// there. The hint stores `found` itself (not `found + 1`) — the caller
    /// may decide not to register the minted name, and a later probe must
    /// then find it again.
    pub fn note_unique(&mut self, space: UniqueSpace, prefix: &str, found: usize) {
        let sym = self.intern(prefix);
        let epoch = self.epoch;
        self.unique_hints
            .insert((space, sym), UniqueHint { epoch, start: found });
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::default();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.lookup("b"), Some(b));
        assert_eq!(t.lookup("c"), None);
        assert_eq!(t.resolve(a), "a");
        assert_eq!(t.resolve(b), "b");
        assert_eq!(t.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn unique_hints_advance_and_respect_epoch() {
        let mut t = SymbolTable::default();
        assert_eq!(t.unique_start(UniqueSpace::Net, "p", 3), 3);
        t.note_unique(UniqueSpace::Net, "p", 10);
        assert_eq!(t.unique_start(UniqueSpace::Net, "p", 3), 10);
        // A larger base wins over the hint.
        assert_eq!(t.unique_start(UniqueSpace::Net, "p", 12), 12);
        // Namespaces are independent.
        assert_eq!(t.unique_start(UniqueSpace::Cell, "p", 3), 3);
        // Freed names invalidate hints.
        t.bump_epoch();
        assert_eq!(t.unique_start(UniqueSpace::Net, "p", 3), 3);
    }

    #[test]
    fn clones_share_name_allocations() {
        let mut t = SymbolTable::default();
        let s = t.intern("shared");
        let c = t.clone();
        assert_eq!(c.resolve(s), "shared");
        assert!(Arc::ptr_eq(&t.names[0], &c.names[0]));
    }
}
