//! Bus-bit name inference (`base[index]`), used by the by-name bus-grouping
//! heuristic of the desynchronizer (§3.2.2, Fig. 3.6).
//!
//! The paper notes that bus grouping "can be used only if the synthesis tool
//! has not collapsed the bus in individual nets, i.e. `bus[n]` versus `bus_n`
//! naming" — so only the `base[index]` form is recognized here.

/// Parses a net name of the form `base[index]` into `(base, index)`.
///
/// Returns `None` for names that are not bus bits (including `bus_n`-style
/// collapsed names, negative-looking garbage, or empty base names). The
/// base is returned as a slice of `name`; [`crate::Module::add_net`]
/// interns it alongside the full net name.
///
/// ```
/// use drd_netlist::bus::parse_bus_bit;
/// let (base, index) = parse_bus_bit("data[12]").unwrap();
/// assert_eq!(base, "data");
/// assert_eq!(index, 12);
/// assert!(parse_bus_bit("data_12").is_none());
/// ```
pub fn parse_bus_bit(name: &str) -> Option<(&str, i64)> {
    let name = name.strip_suffix(']')?;
    let open = name.rfind('[')?;
    let (base, idx) = name.split_at(open);
    if base.is_empty() {
        return None;
    }
    let index: i64 = idx[1..].parse().ok()?;
    if index < 0 {
        return None;
    }
    Some((base, index))
}

/// Formats a bus bit back into its `base[index]` net name.
///
/// ```
/// use drd_netlist::bus::{bus_bit_name, parse_bus_bit};
/// let (base, index) = parse_bus_bit("q[3]").unwrap();
/// assert_eq!(bus_bit_name(base, index), "q[3]");
/// ```
pub fn bus_bit_name(base: &str, index: i64) -> String {
    format!("{base}[{index}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognizes_bus_bits() {
        assert_eq!(parse_bus_bit("addr[0]"), Some(("addr", 0)));
        assert_eq!(parse_bus_bit("x.y/z[31]"), Some(("x.y/z", 31)));
    }

    #[test]
    fn rejects_non_bus_names() {
        assert!(parse_bus_bit("clk").is_none());
        assert!(parse_bus_bit("bus_3").is_none());
        assert!(parse_bus_bit("[3]").is_none());
        assert!(parse_bus_bit("a[b]").is_none());
        assert!(parse_bus_bit("a[3").is_none());
        assert!(parse_bus_bit("a[-3]").is_none());
        assert!(parse_bus_bit("a[]").is_none());
    }

    #[test]
    fn nested_brackets_use_last_group() {
        assert_eq!(parse_bus_bit("mem[2][7]"), Some(("mem[2]", 7)));
    }

    #[test]
    fn roundtrip() {
        for name in ["a[0]", "data[31]", "q[100]"] {
            let (base, index) = parse_bus_bit(name).unwrap();
            assert_eq!(bus_bit_name(base, index), name);
        }
    }
}
