//! Core netlist data model: modules, nets, cells, ports and connectivity.

use std::collections::HashMap;
use std::fmt;

use crate::{CellId, NetId, NetlistError, PortId};

/// Direction of a module port (or, via a [`PinDirs`] resolver, a cell pin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Signal flows into the module/cell.
    Input,
    /// Signal flows out of the module/cell.
    Output,
    /// Bidirectional signal.
    Inout,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
            PortDir::Inout => "inout",
        })
    }
}

/// A top-level connection point of a [`Module`].
///
/// Every port is permanently associated with a like-named internal [`Net`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name (identical to the associated net's name).
    pub name: String,
    /// Port direction.
    pub dir: PortDir,
    /// The internal net carrying this port's signal.
    pub net: NetId,
}

/// Bus membership of a net, inferred from `base[index]` naming (§3.2.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BusBit {
    /// Bus base name (`data` for `data[3]`).
    pub base: String,
    /// Bit index within the bus.
    pub index: i64,
}

/// A single wire of the netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Unique (within the module) net name.
    pub name: String,
    /// Bus membership, if the name has the form `base[index]`.
    pub bus: Option<BusBit>,
}

/// What a [`Cell`] instantiates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// An instance of a technology-library cell, by cell name.
    Lib(String),
    /// An instance of another module of the same design, by module name.
    Instance(String),
}

impl CellKind {
    /// The referenced cell or module name.
    pub fn name(&self) -> &str {
        match self {
            CellKind::Lib(n) | CellKind::Instance(n) => n,
        }
    }
}

/// What a cell pin is connected to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Conn {
    /// Connected to a net.
    Net(NetId),
    /// Tied to constant logic 0 (`1'b0`).
    Const0,
    /// Tied to constant logic 1 (`1'b1`).
    Const1,
    /// Left unconnected (`.PIN()` or missing).
    Open,
}

impl Conn {
    /// Returns the connected net, if any.
    pub fn net(self) -> Option<NetId> {
        match self {
            Conn::Net(n) => Some(n),
            _ => None,
        }
    }
}

/// An instance of a library cell or of a submodule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Unique (within the module) instance name.
    pub name: String,
    /// What this cell instantiates.
    pub kind: CellKind,
    /// Named pin connections, in declaration order.
    pins: Vec<(String, Conn)>,
    /// Marks hazard-free logic that backend tools may only resize (§4.6.2).
    pub size_only: bool,
    pub(crate) alive: bool,
}

impl Cell {
    /// Pin connections in declaration order as `(pin_name, connection)`.
    pub fn pins(&self) -> &[(String, Conn)] {
        &self.pins
    }

    /// Looks up the connection of pin `pin`.
    pub fn pin(&self, pin: &str) -> Option<Conn> {
        self.pins.iter().find(|(p, _)| p == pin).map(|(_, c)| *c)
    }

    /// Index of pin `pin` within [`Cell::pins`].
    pub fn pin_index(&self, pin: &str) -> Option<usize> {
        self.pins.iter().position(|(p, _)| p == pin)
    }
}

/// A `(cell, pin-index)` reference, used in connectivity tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinUse {
    /// The referencing cell.
    pub cell: CellId,
    /// Index into that cell's pin list.
    pub pin: u32,
}

/// A driver or load of a net: either a cell pin or a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A cell pin.
    Pin(PinUse),
    /// A module port (input ports drive nets; output ports load them).
    Port(PortId),
}

/// Resolves the direction of a cell pin; implemented by technology libraries.
pub trait PinDirs {
    /// Direction of pin `pin` on cells of kind `kind`, or `None` if unknown.
    fn pin_dir(&self, kind: &CellKind, pin: &str) -> Option<PortDir>;
}

impl<F> PinDirs for F
where
    F: Fn(&CellKind, &str) -> Option<PortDir>,
{
    fn pin_dir(&self, kind: &CellKind, pin: &str) -> Option<PortDir> {
        self(kind, pin)
    }
}

/// A single flattened circuit: nets, cells and ports.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    ports: Vec<Port>,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    net_names: HashMap<String, NetId>,
    cell_names: HashMap<String, CellId>,
    port_names: HashMap<String, PortId>,
    const_ties: Vec<(NetId, bool)>,
    dead_cells: usize,
}

impl Module {
    /// Creates an empty module named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    // ---- nets -----------------------------------------------------------

    /// Adds a net named `name`.
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if a net of that name exists.
    pub fn add_net(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let name = name.into();
        if self.net_names.contains_key(&name) {
            return Err(NetlistError::DuplicateName {
                kind: "net",
                name,
            });
        }
        let id = NetId::from_index(self.nets.len());
        let bus = crate::bus::parse_bus_bit(&name);
        self.net_names.insert(name.clone(), id);
        self.nets.push(Net { name, bus });
        Ok(id)
    }

    /// Adds a net with a unique name starting with `prefix`.
    pub fn add_net_auto(&mut self, prefix: &str) -> NetId {
        let name = self.unique_net_name(prefix);
        self.add_net(name).expect("unique name cannot collide")
    }

    /// Returns a net name starting with `prefix` that is not yet in use.
    pub fn unique_net_name(&self, prefix: &str) -> String {
        if !self.net_names.contains_key(prefix) {
            return prefix.to_owned();
        }
        let mut i = self.nets.len();
        loop {
            let candidate = format!("{prefix}_{i}");
            if !self.net_names.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    /// Returns the net with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds for this module.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks a net up by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Iterates over all nets as `(id, net)`.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId::from_index(i), n))
    }

    /// Number of nets (including nets only referenced by dead cells).
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    // ---- ports ----------------------------------------------------------

    /// Adds a port and its like-named net.
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if the port or net name exists.
    pub fn add_port(
        &mut self,
        name: impl Into<String>,
        dir: PortDir,
    ) -> Result<PortId, NetlistError> {
        let name = name.into();
        if self.port_names.contains_key(&name) {
            return Err(NetlistError::DuplicateName {
                kind: "port",
                name,
            });
        }
        let net = match self.find_net(&name) {
            Some(n) => n,
            None => self.add_net(name.clone())?,
        };
        let id = PortId::from_index(self.ports.len());
        self.port_names.insert(name.clone(), id);
        self.ports.push(Port { name, dir, net });
        Ok(id)
    }

    /// Returns the port with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds for this module.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// Looks a port up by name.
    pub fn find_port(&self, name: &str) -> Option<PortId> {
        self.port_names.get(name).copied()
    }

    /// Iterates over all ports as `(id, port)`.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .map(|(i, p)| (PortId::from_index(i), p))
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    // ---- cells ----------------------------------------------------------

    /// Adds a library-cell instance named `name` of cell `lib_cell`.
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if the instance name exists.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        lib_cell: impl Into<String>,
        pins: &[(&str, Conn)],
    ) -> Result<CellId, NetlistError> {
        self.add_cell_of_kind(name, CellKind::Lib(lib_cell.into()), pins)
    }

    /// Adds an instance of another module of the design.
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if the instance name exists.
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        module: impl Into<String>,
        pins: &[(&str, Conn)],
    ) -> Result<CellId, NetlistError> {
        self.add_cell_of_kind(name, CellKind::Instance(module.into()), pins)
    }

    /// Adds a cell of an explicit [`CellKind`].
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if the instance name exists.
    pub fn add_cell_of_kind(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        pins: &[(&str, Conn)],
    ) -> Result<CellId, NetlistError> {
        let name = name.into();
        if self.cell_names.contains_key(&name) {
            return Err(NetlistError::DuplicateName {
                kind: "cell",
                name,
            });
        }
        let id = CellId::from_index(self.cells.len());
        self.cell_names.insert(name.clone(), id);
        self.cells.push(Cell {
            name,
            kind,
            pins: pins.iter().map(|(p, c)| ((*p).to_owned(), *c)).collect(),
            size_only: false,
            alive: true,
        });
        Ok(id)
    }

    /// Returns a cell name starting with `prefix` that is not yet in use.
    pub fn unique_cell_name(&self, prefix: &str) -> String {
        if !self.cell_names.contains_key(prefix) {
            return prefix.to_owned();
        }
        let mut i = self.cells.len();
        loop {
            let candidate = format!("{prefix}_{i}");
            if !self.cell_names.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    /// Returns the cell with id `id` (dead or alive).
    ///
    /// # Panics
    /// Panics if `id` is out of bounds for this module.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Whether the cell has not been removed.
    pub fn is_cell_alive(&self, id: CellId) -> bool {
        self.cells[id.index()].alive
    }

    /// Looks a live cell up by instance name.
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cell_names
            .get(name)
            .copied()
            .filter(|id| self.cells[id.index()].alive)
    }

    /// Iterates over live cells as `(id, cell)`.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive)
            .map(|(i, c)| (CellId::from_index(i), c))
    }

    /// Number of live cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len() - self.dead_cells
    }

    /// Removes (tombstones) a cell. Its name becomes reusable.
    pub fn remove_cell(&mut self, id: CellId) {
        let cell = &mut self.cells[id.index()];
        if cell.alive {
            cell.alive = false;
            self.dead_cells += 1;
            self.cell_names.remove(&cell.name);
        }
    }

    /// Reconnects pin `pin` of cell `id` to `conn`, adding the pin if absent.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds for this module.
    pub fn set_pin(&mut self, id: CellId, pin: &str, conn: Conn) {
        let cell = &mut self.cells[id.index()];
        match cell.pins.iter_mut().find(|(p, _)| p == pin) {
            Some((_, c)) => *c = conn,
            None => cell.pins.push((pin.to_owned(), conn)),
        }
    }

    /// Marks a cell `size_only` so backend optimization may not restructure it.
    pub fn set_size_only(&mut self, id: CellId, size_only: bool) {
        self.cells[id.index()].size_only = size_only;
    }

    /// Rewrites every connection to `from` so it points at `to` instead.
    pub fn rewire_net(&mut self, from: NetId, to: Conn) {
        for cell in self.cells.iter_mut().filter(|c| c.alive) {
            for (_, conn) in cell.pins.iter_mut() {
                if *conn == Conn::Net(from) {
                    *conn = to;
                }
            }
        }
    }

    /// Rewrites many nets in a single pass over all cells.
    ///
    /// Equivalent to calling [`Module::rewire_net`] for every map entry, but
    /// O(pins) instead of O(nets × pins).
    pub fn rewire_many(&mut self, map: &HashMap<NetId, Conn>) {
        if map.is_empty() {
            return;
        }
        for cell in self.cells.iter_mut().filter(|c| c.alive) {
            for (_, conn) in cell.pins.iter_mut() {
                if let Conn::Net(n) = conn {
                    if let Some(to) = map.get(n) {
                        *conn = *to;
                    }
                }
            }
        }
    }

    /// Re-points every port whose net is `from` at net `to` (used when
    /// `assign` aliases merge a port net into another net).
    pub fn merge_port_net(&mut self, from: NetId, to: NetId) {
        for port in self.ports.iter_mut() {
            if port.net == from {
                port.net = to;
            }
        }
    }

    /// Records that `net` is tied to the constant `value` by a continuous
    /// assignment (`assign net = 1'b0/1`).
    pub fn add_const_tie(&mut self, net: NetId, value: bool) {
        if !self.const_ties.iter().any(|(n, _)| *n == net) {
            self.const_ties.push((net, value));
        }
    }

    /// Constant continuous-assignment ties recorded on this module.
    pub fn const_ties(&self) -> &[(NetId, bool)] {
        &self.const_ties
    }

    // ---- connectivity ---------------------------------------------------

    /// Builds the driver/load tables for the current netlist state.
    ///
    /// # Errors
    /// Returns [`NetlistError::MultipleDrivers`] if two endpoints drive one
    /// net, and [`NetlistError::UnknownName`] if a pin direction cannot be
    /// resolved by `dirs`.
    pub fn connectivity(&self, dirs: &impl PinDirs) -> Result<Connectivity, NetlistError> {
        let mut drivers: Vec<Option<Endpoint>> = vec![None; self.nets.len()];
        let mut loads: Vec<Vec<Endpoint>> = vec![Vec::new(); self.nets.len()];
        for (pid, port) in self.ports() {
            match port.dir {
                PortDir::Input => {
                    if drivers[port.net.index()].is_some() {
                        return Err(NetlistError::MultipleDrivers {
                            net: self.net(port.net).name.clone(),
                        });
                    }
                    drivers[port.net.index()] = Some(Endpoint::Port(pid));
                }
                PortDir::Output | PortDir::Inout => {
                    loads[port.net.index()].push(Endpoint::Port(pid));
                }
            }
        }
        for (cid, cell) in self.cells() {
            for (idx, (pin, conn)) in cell.pins().iter().enumerate() {
                let Conn::Net(net) = conn else { continue };
                let dir = dirs.pin_dir(&cell.kind, pin).ok_or_else(|| {
                    NetlistError::UnknownName {
                        kind: "pin",
                        name: format!("{}/{}", cell.kind.name(), pin),
                    }
                })?;
                let endpoint = Endpoint::Pin(PinUse {
                    cell: cid,
                    pin: idx as u32,
                });
                match dir {
                    PortDir::Output => {
                        if drivers[net.index()].is_some() {
                            return Err(NetlistError::MultipleDrivers {
                                net: self.net(*net).name.clone(),
                            });
                        }
                        drivers[net.index()] = Some(endpoint);
                    }
                    PortDir::Input | PortDir::Inout => loads[net.index()].push(endpoint),
                }
            }
        }
        Ok(Connectivity { drivers, loads })
    }
}

/// Driver/load tables for one [`Module`], built by [`Module::connectivity`].
#[derive(Debug, Clone)]
pub struct Connectivity {
    drivers: Vec<Option<Endpoint>>,
    loads: Vec<Vec<Endpoint>>,
}

impl Connectivity {
    /// The endpoint driving `net`, if any.
    pub fn driver(&self, net: NetId) -> Option<Endpoint> {
        self.drivers[net.index()]
    }

    /// The endpoints loading (reading) `net`.
    pub fn loads(&self, net: NetId) -> &[Endpoint] {
        &self.loads[net.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dirs(kind: &CellKind, pin: &str) -> Option<PortDir> {
        let _ = kind;
        match pin {
            "Z" | "Q" => Some(PortDir::Output),
            _ => Some(PortDir::Input),
        }
    }

    fn inv(module: &mut Module, name: &str, a: NetId, z: NetId) -> CellId {
        module
            .add_cell(name, "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(z))])
            .expect("fresh name")
    }

    #[test]
    fn build_and_query() {
        let mut m = Module::new("top");
        let a = m.add_port("a", PortDir::Input).unwrap();
        let z = m.add_port("z", PortDir::Output).unwrap();
        let mid = m.add_net("mid").unwrap();
        let a_net = m.port(a).net;
        let z_net = m.port(z).net;
        let u1 = inv(&mut m, "u1", a_net, mid);
        let u2 = inv(&mut m, "u2", mid, z_net);
        assert_eq!(m.cell_count(), 2);
        assert_eq!(m.find_cell("u1"), Some(u1));
        assert_eq!(m.cell(u2).pin("A"), Some(Conn::Net(mid)));

        let conn = m.connectivity(&dirs).unwrap();
        assert_eq!(
            conn.driver(mid),
            Some(Endpoint::Pin(PinUse { cell: u1, pin: 1 }))
        );
        assert_eq!(conn.loads(mid).len(), 1);
        assert_eq!(conn.driver(a_net), Some(Endpoint::Port(a)));
        assert_eq!(conn.loads(z_net), &[Endpoint::Port(z)]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = Module::new("top");
        m.add_net("n").unwrap();
        assert!(matches!(
            m.add_net("n"),
            Err(NetlistError::DuplicateName { kind: "net", .. })
        ));
        let n = m.find_net("n").unwrap();
        inv(&mut m, "u", n, n);
        assert!(m
            .add_cell("u", "BUFX1", &[("A", Conn::Net(n))])
            .is_err());
    }

    #[test]
    fn multiple_drivers_detected() {
        let mut m = Module::new("top");
        let n = m.add_net("n").unwrap();
        let a = m.add_net("a").unwrap();
        inv(&mut m, "u1", a, n);
        inv(&mut m, "u2", a, n);
        assert!(matches!(
            m.connectivity(&dirs),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn remove_cell_frees_name_and_updates_count() {
        let mut m = Module::new("top");
        let n = m.add_net("n").unwrap();
        let u = inv(&mut m, "u", n, n);
        m.remove_cell(u);
        assert_eq!(m.cell_count(), 0);
        assert_eq!(m.find_cell("u"), None);
        assert!(!m.is_cell_alive(u));
        // Name is reusable after removal.
        inv(&mut m, "u", n, n);
        assert_eq!(m.cell_count(), 1);
    }

    #[test]
    fn rewire_net_redirects_connections() {
        let mut m = Module::new("top");
        let a = m.add_net("a").unwrap();
        let b = m.add_net("b").unwrap();
        let u = inv(&mut m, "u", a, b);
        m.rewire_net(a, Conn::Const1);
        assert_eq!(m.cell(u).pin("A"), Some(Conn::Const1));
        assert_eq!(m.cell(u).pin("Z"), Some(Conn::Net(b)));
    }

    #[test]
    fn unique_names_do_not_collide() {
        let mut m = Module::new("top");
        m.add_net("x").unwrap();
        let name = m.unique_net_name("x");
        assert_ne!(name, "x");
        m.add_net(name).unwrap();
    }

    #[test]
    fn bus_bits_are_inferred() {
        let mut m = Module::new("top");
        let n = m.add_net("data[5]").unwrap();
        let bus = m.net(n).bus.as_ref().unwrap();
        assert_eq!(bus.base, "data");
        assert_eq!(bus.index, 5);
        let plain = m.add_net("clk").unwrap();
        assert!(m.net(plain).bus.is_none());
    }
}
