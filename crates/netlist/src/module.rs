//! Core netlist data model: modules, nets, cells, ports and connectivity.
//!
//! The module stores its data in struct-of-arrays form: per-net and
//! per-cell attributes live in parallel vectors, pin lists are slices of
//! one flat `(Symbol, Conn)` table, and every name is interned in the
//! module's [`SymbolTable`]. Passes traverse dense `u32` ids; strings are
//! resolved only at the parse/write/report boundaries. Accessors hand out
//! cheap [`Copy`] views ([`Cell`], [`Net`], [`Port`]) whose `name` fields
//! borrow the interned strings.

use std::collections::HashMap;
use std::fmt;

use crate::symbol::{Symbol, SymbolTable, UniqueSpace};
use crate::{CellId, NetId, NetlistError, PortId};

/// Direction of a module port (or, via a [`PinDirs`] resolver, a cell pin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Signal flows into the module/cell.
    Input,
    /// Signal flows out of the module/cell.
    Output,
    /// Bidirectional signal.
    Inout,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
            PortDir::Inout => "inout",
        })
    }
}

/// A view of one top-level connection point of a [`Module`].
///
/// Every port is permanently associated with a like-named internal net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Port<'a> {
    /// Port name (identical to the associated net's name).
    pub name: &'a str,
    /// Port direction.
    pub dir: PortDir,
    /// The internal net carrying this port's signal.
    pub net: NetId,
}

/// Bus membership of a net, inferred from `base[index]` naming (§3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusBit<'a> {
    /// Bus base name (`data` for `data[3]`).
    pub base: &'a str,
    /// Bit index within the bus.
    pub index: i64,
}

/// A view of a single wire of the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Net<'a> {
    /// Unique (within the module) net name.
    pub name: &'a str,
    /// Bus membership, if the name has the form `base[index]`.
    pub bus: Option<BusBit<'a>>,
}

/// What a cell instantiates. The payload symbol belongs to the owning
/// module's [`SymbolTable`]; use [`Cell::kind_ref`] (or
/// [`Module::kind_ref`]) to see the referenced name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// An instance of a technology-library cell, by interned cell name.
    Lib(Symbol),
    /// An instance of another module of the same design, by interned name.
    Instance(Symbol),
}

impl CellKind {
    /// The referenced cell or module name symbol.
    #[inline]
    pub fn sym(self) -> Symbol {
        match self {
            CellKind::Lib(s) | CellKind::Instance(s) => s,
        }
    }
}

/// A resolved [`CellKind`]: the same two variants with the name as a
/// string slice. This is the form that crosses crate boundaries (library
/// lookup, pin-direction resolution, flattening).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KindRef<'a> {
    /// An instance of a technology-library cell.
    Lib(&'a str),
    /// An instance of another module of the same design.
    Instance(&'a str),
}

impl<'a> KindRef<'a> {
    /// The referenced cell or module name.
    #[inline]
    pub fn name(self) -> &'a str {
        match self {
            KindRef::Lib(n) | KindRef::Instance(n) => n,
        }
    }
}

/// What a cell pin is connected to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Conn {
    /// Connected to a net.
    Net(NetId),
    /// Tied to constant logic 0 (`1'b0`).
    Const0,
    /// Tied to constant logic 1 (`1'b1`).
    Const1,
    /// Left unconnected (`.PIN()` or missing).
    Open,
}

impl Conn {
    /// Returns the connected net, if any.
    pub fn net(self) -> Option<NetId> {
        match self {
            Conn::Net(n) => Some(n),
            _ => None,
        }
    }
}

/// A view of an instance of a library cell or of a submodule.
///
/// The view is `Copy` and borrows the module: `name` is the interned
/// instance name, `pins` index into the module's flat pin table.
#[derive(Debug, Clone, Copy)]
pub struct Cell<'a> {
    /// Unique (within the module) instance name.
    pub name: &'a str,
    /// What this cell instantiates.
    pub kind: CellKind,
    /// Marks hazard-free logic that backend tools may only resize (§4.6.2).
    pub size_only: bool,
    name_sym: Symbol,
    pins: &'a [(Symbol, Conn)],
    syms: &'a SymbolTable,
}

impl<'a> Cell<'a> {
    /// The interned instance-name symbol.
    #[inline]
    pub fn name_sym(&self) -> Symbol {
        self.name_sym
    }

    /// Pin connections in declaration order as `(pin_symbol, connection)`.
    #[inline]
    pub fn pins(&self) -> &'a [(Symbol, Conn)] {
        self.pins
    }

    /// The name of pin number `i` (an index into [`Cell::pins`]).
    #[inline]
    pub fn pin_name(&self, i: usize) -> &'a str {
        self.syms.resolve(self.pins[i].0)
    }

    /// Looks up the connection of pin `pin` by name.
    pub fn pin(&self, pin: &str) -> Option<Conn> {
        let sym = self.syms.lookup(pin)?;
        self.pins.iter().find(|(p, _)| *p == sym).map(|(_, c)| *c)
    }

    /// Looks up the connection of pin `pin` by symbol.
    pub fn pin_by_sym(&self, pin: Symbol) -> Option<Conn> {
        self.pins.iter().find(|(p, _)| *p == pin).map(|(_, c)| *c)
    }

    /// Index of pin `pin` within [`Cell::pins`].
    pub fn pin_index(&self, pin: &str) -> Option<usize> {
        let sym = self.syms.lookup(pin)?;
        self.pins.iter().position(|(p, _)| *p == sym)
    }

    /// The instantiated kind with its name resolved.
    #[inline]
    pub fn kind_ref(&self) -> KindRef<'a> {
        match self.kind {
            CellKind::Lib(s) => KindRef::Lib(self.syms.resolve(s)),
            CellKind::Instance(s) => KindRef::Instance(self.syms.resolve(s)),
        }
    }

    /// The name of the instantiated library cell or submodule.
    #[inline]
    pub fn kind_name(&self) -> &'a str {
        self.syms.resolve(self.kind.sym())
    }
}

/// A `(cell, pin-index)` reference, used in connectivity tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinUse {
    /// The referencing cell.
    pub cell: CellId,
    /// Index into that cell's pin list.
    pub pin: u32,
}

/// A driver or load of a net: either a cell pin or a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A cell pin.
    Pin(PinUse),
    /// A module port (input ports drive nets; output ports load them).
    Port(PortId),
}

/// Resolves the direction of a cell pin; implemented by technology libraries.
pub trait PinDirs {
    /// Direction of pin `pin` on cells of kind `kind`, or `None` if unknown.
    fn pin_dir(&self, kind: KindRef<'_>, pin: &str) -> Option<PortDir>;
}

impl<F> PinDirs for F
where
    F: Fn(KindRef<'_>, &str) -> Option<PortDir>,
{
    fn pin_dir(&self, kind: KindRef<'_>, pin: &str) -> Option<PortDir> {
        self(kind, pin)
    }
}

/// Sentinel for "symbol not bound" in the dense symbol → id indices.
const UNBOUND: u32 = u32::MAX;

#[inline]
fn slot_get(index: &[u32], sym: Symbol) -> Option<u32> {
    match index.get(sym.index()) {
        Some(&v) if v != UNBOUND => Some(v),
        _ => None,
    }
}

#[inline]
fn slot_set(index: &mut Vec<u32>, sym: Symbol, value: u32) {
    if index.len() <= sym.index() {
        index.resize(sym.index() + 1, UNBOUND);
    }
    index[sym.index()] = value;
}

/// A single flattened circuit: nets, cells and ports, in
/// struct-of-arrays layout around one [`SymbolTable`].
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    syms: SymbolTable,

    // Ports.
    port_name: Vec<Symbol>,
    port_dir: Vec<PortDir>,
    port_net: Vec<NetId>,

    // Nets.
    net_name: Vec<Symbol>,
    net_bus: Vec<Option<(Symbol, i64)>>,

    // Cells; pin lists are `pin_start[i] .. pin_start[i] + pin_len[i]`
    // ranges of the flat `pins` table.
    cell_name: Vec<Symbol>,
    cell_kind: Vec<CellKind>,
    cell_size_only: Vec<bool>,
    cell_alive: Vec<bool>,
    pin_start: Vec<u32>,
    pin_len: Vec<u32>,
    pins: Vec<(Symbol, Conn)>,

    // Dense symbol → id indices (UNBOUND sentinel).
    sym_net: Vec<u32>,
    sym_cell: Vec<u32>,
    sym_port: Vec<u32>,

    const_ties: Vec<(NetId, bool)>,
    dead_cells: usize,
}

impl Module {
    /// Creates an empty module named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Pre-sizes the symbol table and the net/cell/pin stores for a module
    /// expected to hold roughly the given counts. Purely an allocation
    /// hint (used by the Verilog parser, which estimates from source
    /// length); under- or over-estimating is always safe.
    pub fn reserve(&mut self, syms: usize, nets: usize, cells: usize, pins: usize) {
        if self.syms.is_empty() && syms > 0 {
            self.syms = SymbolTable::with_capacity(syms);
        }
        self.net_name.reserve(nets);
        self.net_bus.reserve(nets);
        self.cell_name.reserve(cells);
        self.cell_kind.reserve(cells);
        self.cell_size_only.reserve(cells);
        self.cell_alive.reserve(cells);
        self.pin_start.reserve(cells);
        self.pin_len.reserve(cells);
        self.pins.reserve(pins);
        self.sym_net.reserve(syms);
        self.sym_cell.reserve(syms);
    }

    // ---- symbols --------------------------------------------------------

    /// Interns `name` in this module's symbol table.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.syms.intern(name)
    }

    /// The symbol of `name`, if interned.
    pub fn lookup_sym(&self, name: &str) -> Option<Symbol> {
        self.syms.lookup(name)
    }

    /// Resolves a symbol of this module back to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.syms.resolve(sym)
    }

    /// The module's symbol table (for sharing with downstream consumers
    /// such as the simulator; clones share the name allocations).
    pub fn symbols(&self) -> &SymbolTable {
        &self.syms
    }

    /// A library-cell kind referencing `name`.
    pub fn lib_kind(&mut self, name: &str) -> CellKind {
        CellKind::Lib(self.syms.intern(name))
    }

    /// A submodule-instance kind referencing `name`.
    pub fn instance_kind(&mut self, name: &str) -> CellKind {
        CellKind::Instance(self.syms.intern(name))
    }

    /// Resolves `kind` (of this module) to its string form.
    pub fn kind_ref(&self, kind: CellKind) -> KindRef<'_> {
        match kind {
            CellKind::Lib(s) => KindRef::Lib(self.syms.resolve(s)),
            CellKind::Instance(s) => KindRef::Instance(self.syms.resolve(s)),
        }
    }

    // ---- nets -----------------------------------------------------------

    /// Adds a net named `name`.
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if a net of that name exists.
    pub fn add_net(&mut self, name: impl AsRef<str>) -> Result<NetId, NetlistError> {
        let name = name.as_ref();
        let sym = self.syms.intern(name);
        if slot_get(&self.sym_net, sym).is_some() {
            return Err(NetlistError::DuplicateName {
                kind: "net",
                name: name.to_owned(),
            });
        }
        let id = NetId::from_index(self.net_name.len());
        let bus = crate::bus::parse_bus_bit(name)
            .map(|(base, index)| (self.syms.intern(base), index));
        slot_set(&mut self.sym_net, sym, id.index() as u32);
        self.net_name.push(sym);
        self.net_bus.push(bus);
        Ok(id)
    }

    /// The net named `name`, creating it if it does not exist yet.
    ///
    /// One symbol-table probe on the hit path — this is the parser's
    /// implicit-net fast path (`find_net` + `add_net` would intern and
    /// hash the name twice).
    pub fn get_or_add_net(&mut self, name: &str) -> NetId {
        let sym = self.syms.intern(name);
        self.get_or_add_net_sym(sym, name)
    }

    /// [`Module::get_or_add_net`] for a name the caller has already
    /// interned — zero symbol-table probes on the hit path. `name` must be
    /// the string of `sym`.
    pub fn get_or_add_net_sym(&mut self, sym: Symbol, name: &str) -> NetId {
        debug_assert_eq!(self.syms.resolve(sym), name);
        if let Some(i) = slot_get(&self.sym_net, sym) {
            return NetId::from_index(i as usize);
        }
        let id = NetId::from_index(self.net_name.len());
        let bus = crate::bus::parse_bus_bit(name)
            .map(|(base, index)| (self.syms.intern(base), index));
        slot_set(&mut self.sym_net, sym, id.index() as u32);
        self.net_name.push(sym);
        self.net_bus.push(bus);
        id
    }

    /// [`Module::get_or_add_net`] for a net the caller already knows is
    /// bit `index` of bus `base` — the create path records the bus
    /// membership directly instead of re-parsing (and re-interning the
    /// base of) the composed name. `name` must be the `base[index]`
    /// composition of the other two arguments.
    pub fn get_or_add_bus_net(&mut self, name: &str, base: Symbol, index: i64) -> NetId {
        debug_assert_eq!(
            crate::bus::parse_bus_bit(name).filter(|&(_, i)| i >= 0),
            if index >= 0 {
                Some((self.syms.resolve(base), index))
            } else {
                None
            }
        );
        let sym = self.syms.intern(name);
        if let Some(i) = slot_get(&self.sym_net, sym) {
            return NetId::from_index(i as usize);
        }
        let id = NetId::from_index(self.net_name.len());
        // `parse_bus_bit` treats a negative index as "not a bus bit";
        // mirror that so both creation paths agree.
        let bus = (index >= 0).then_some((base, index));
        slot_set(&mut self.sym_net, sym, id.index() as u32);
        self.net_name.push(sym);
        self.net_bus.push(bus);
        id
    }

    /// [`Module::get_or_add_net_sym`] when only the symbol is at hand; the
    /// name is resolved from the table on the (rare) create path.
    pub fn get_or_add_net_interned(&mut self, sym: Symbol) -> NetId {
        if let Some(i) = slot_get(&self.sym_net, sym) {
            return NetId::from_index(i as usize);
        }
        let name = self.syms.resolve_arc(sym);
        let id = NetId::from_index(self.net_name.len());
        let bus = crate::bus::parse_bus_bit(&name)
            .map(|(base, index)| (self.syms.intern(base), index));
        slot_set(&mut self.sym_net, sym, id.index() as u32);
        self.net_name.push(sym);
        self.net_bus.push(bus);
        id
    }

    /// Adds a net with a unique name starting with `prefix`.
    pub fn add_net_auto(&mut self, prefix: &str) -> NetId {
        let name = self.unique_net_name(prefix);
        self.add_net(name).expect("unique name cannot collide")
    }

    /// Returns a net name starting with `prefix` that is not yet in use.
    ///
    /// Successive calls with the same prefix are amortized O(1): the probe
    /// start is cached per prefix in the symbol table (net names are never
    /// freed, so a counter that was taken stays taken).
    pub fn unique_net_name(&mut self, prefix: &str) -> String {
        if self.find_net(prefix).is_none() {
            return prefix.to_owned();
        }
        let base = self.net_name.len();
        let mut i = self.syms.unique_start(UniqueSpace::Net, prefix, base);
        loop {
            let candidate = format!("{prefix}_{i}");
            if self.find_net(&candidate).is_none() {
                self.syms.note_unique(UniqueSpace::Net, prefix, i);
                return candidate;
            }
            i += 1;
        }
    }

    /// Returns the net with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds for this module.
    pub fn net(&self, id: NetId) -> Net<'_> {
        let i = id.index();
        Net {
            name: self.syms.resolve(self.net_name[i]),
            bus: self.net_bus[i].map(|(base, index)| BusBit {
                base: self.syms.resolve(base),
                index,
            }),
        }
    }

    /// The interned name symbol of net `id`.
    pub fn net_sym(&self, id: NetId) -> Symbol {
        self.net_name[id.index()]
    }

    /// Looks a net up by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        let sym = self.syms.lookup(name)?;
        self.find_net_sym(sym)
    }

    /// Looks a net up by interned name.
    pub fn find_net_sym(&self, sym: Symbol) -> Option<NetId> {
        slot_get(&self.sym_net, sym).map(|i| NetId::from_index(i as usize))
    }

    /// Iterates over all nets as `(id, net)`.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, Net<'_>)> {
        (0..self.net_name.len()).map(|i| (NetId::from_index(i), self.net(NetId::from_index(i))))
    }

    /// Number of nets (including nets only referenced by dead cells).
    pub fn net_count(&self) -> usize {
        self.net_name.len()
    }

    // ---- ports ----------------------------------------------------------

    /// Adds a port and its like-named net.
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if the port or net name exists.
    pub fn add_port(
        &mut self,
        name: impl AsRef<str>,
        dir: PortDir,
    ) -> Result<PortId, NetlistError> {
        let name = name.as_ref();
        let sym = self.syms.intern(name);
        if slot_get(&self.sym_port, sym).is_some() {
            return Err(NetlistError::DuplicateName {
                kind: "port",
                name: name.to_owned(),
            });
        }
        let net = match self.find_net_sym(sym) {
            Some(n) => n,
            None => self.add_net(name)?,
        };
        let id = PortId::from_index(self.port_name.len());
        slot_set(&mut self.sym_port, sym, id.index() as u32);
        self.port_name.push(sym);
        self.port_dir.push(dir);
        self.port_net.push(net);
        Ok(id)
    }

    /// Returns the port with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds for this module.
    pub fn port(&self, id: PortId) -> Port<'_> {
        let i = id.index();
        Port {
            name: self.syms.resolve(self.port_name[i]),
            dir: self.port_dir[i],
            net: self.port_net[i],
        }
    }

    /// The interned name symbol of port `id`.
    pub fn port_sym(&self, id: PortId) -> Symbol {
        self.port_name[id.index()]
    }

    /// Looks a port up by name.
    pub fn find_port(&self, name: &str) -> Option<PortId> {
        let sym = self.syms.lookup(name)?;
        slot_get(&self.sym_port, sym).map(|i| PortId::from_index(i as usize))
    }

    /// Iterates over all ports as `(id, port)`.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, Port<'_>)> {
        (0..self.port_name.len())
            .map(|i| (PortId::from_index(i), self.port(PortId::from_index(i))))
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.port_name.len()
    }

    /// Re-points every port whose net is `from` at net `to` (used when
    /// `assign` aliases merge a port net into another net).
    pub fn merge_port_net(&mut self, from: NetId, to: NetId) {
        for net in self.port_net.iter_mut() {
            if *net == from {
                *net = to;
            }
        }
    }

    // ---- cells ----------------------------------------------------------

    /// Adds a library-cell instance named `name` of cell `lib_cell`.
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if the instance name exists.
    pub fn add_cell(
        &mut self,
        name: impl AsRef<str>,
        lib_cell: impl AsRef<str>,
        pins: &[(&str, Conn)],
    ) -> Result<CellId, NetlistError> {
        let kind = self.lib_kind(lib_cell.as_ref());
        self.add_cell_of_kind(name, kind, pins)
    }

    /// Adds an instance of another module of the design.
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if the instance name exists.
    pub fn add_instance(
        &mut self,
        name: impl AsRef<str>,
        module: impl AsRef<str>,
        pins: &[(&str, Conn)],
    ) -> Result<CellId, NetlistError> {
        let kind = self.instance_kind(module.as_ref());
        self.add_cell_of_kind(name, kind, pins)
    }

    /// Adds a cell of an explicit [`CellKind`] (whose symbol must come
    /// from this module, e.g. via [`Module::lib_kind`]).
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if the instance name exists.
    pub fn add_cell_of_kind(
        &mut self,
        name: impl AsRef<str>,
        kind: CellKind,
        pins: &[(&str, Conn)],
    ) -> Result<CellId, NetlistError> {
        let name = name.as_ref();
        let sym = self.syms.intern(name);
        if slot_get(&self.sym_cell, sym).is_some() {
            return Err(NetlistError::DuplicateName {
                kind: "cell",
                name: name.to_owned(),
            });
        }
        let id = CellId::from_index(self.cell_name.len());
        slot_set(&mut self.sym_cell, sym, id.index() as u32);
        let start = self.pins.len() as u32;
        for (p, c) in pins {
            let psym = self.syms.intern(p);
            self.pins.push((psym, *c));
        }
        self.cell_name.push(sym);
        self.cell_kind.push(kind);
        self.cell_size_only.push(false);
        self.cell_alive.push(true);
        self.pin_start.push(start);
        self.pin_len.push(pins.len() as u32);
        Ok(id)
    }

    /// Adds a cell whose pin names are already interned in this module's
    /// symbol table (the streaming parser's path: pin symbols are produced
    /// at lex time, so the pin slice is copied straight into the flat pin
    /// arena with no per-pin re-hash).
    ///
    /// # Errors
    /// Returns [`NetlistError::DuplicateName`] if the instance name exists.
    pub fn add_cell_interned(
        &mut self,
        name: impl AsRef<str>,
        kind: CellKind,
        pins: &[(Symbol, Conn)],
    ) -> Result<CellId, NetlistError> {
        let name = name.as_ref();
        let sym = self.syms.intern(name);
        if slot_get(&self.sym_cell, sym).is_some() {
            return Err(NetlistError::DuplicateName {
                kind: "cell",
                name: name.to_owned(),
            });
        }
        let id = CellId::from_index(self.cell_name.len());
        slot_set(&mut self.sym_cell, sym, id.index() as u32);
        let start = self.pins.len() as u32;
        self.pins.extend_from_slice(pins);
        self.cell_name.push(sym);
        self.cell_kind.push(kind);
        self.cell_size_only.push(false);
        self.cell_alive.push(true);
        self.pin_start.push(start);
        self.pin_len.push(pins.len() as u32);
        Ok(id)
    }

    /// Total number of pin-arena entries (including pins of dead cells).
    /// Used by the writer to preallocate its output buffer.
    pub fn pin_table_len(&self) -> usize {
        self.pins.len()
    }

    /// Returns a cell name starting with `prefix` that is not yet in use.
    ///
    /// Amortized O(1) via the same per-prefix counter cache as
    /// [`Module::unique_net_name`]; cell removal frees names, so the cache
    /// is epoch-invalidated by [`Module::remove_cell`].
    pub fn unique_cell_name(&mut self, prefix: &str) -> String {
        if self.find_cell_slot(prefix).is_none() {
            return prefix.to_owned();
        }
        let base = self.cell_name.len();
        let mut i = self.syms.unique_start(UniqueSpace::Cell, prefix, base);
        loop {
            let candidate = format!("{prefix}_{i}");
            if self.find_cell_slot(&candidate).is_none() {
                self.syms.note_unique(UniqueSpace::Cell, prefix, i);
                return candidate;
            }
            i += 1;
        }
    }

    /// Raw cell-name binding (even for names of dead cells, which stay
    /// unbound). Used for uniqueness checks.
    fn find_cell_slot(&self, name: &str) -> Option<u32> {
        let sym = self.syms.lookup(name)?;
        slot_get(&self.sym_cell, sym)
    }

    /// Returns the cell with id `id` (dead or alive).
    ///
    /// # Panics
    /// Panics if `id` is out of bounds for this module.
    pub fn cell(&self, id: CellId) -> Cell<'_> {
        let i = id.index();
        let (s, l) = (self.pin_start[i] as usize, self.pin_len[i] as usize);
        Cell {
            name: self.syms.resolve(self.cell_name[i]),
            kind: self.cell_kind[i],
            size_only: self.cell_size_only[i],
            name_sym: self.cell_name[i],
            pins: &self.pins[s..s + l],
            syms: &self.syms,
        }
    }

    /// The interned name symbol of cell `id`.
    pub fn cell_sym(&self, id: CellId) -> Symbol {
        self.cell_name[id.index()]
    }

    /// The kind of cell `id` (without constructing a full view).
    pub fn cell_kind(&self, id: CellId) -> CellKind {
        self.cell_kind[id.index()]
    }

    /// Replaces the kind of cell `id` (e.g. resolving a presumed library
    /// cell into a submodule instance during parsing).
    pub fn set_cell_kind(&mut self, id: CellId, kind: CellKind) {
        self.cell_kind[id.index()] = kind;
    }

    /// Whether the cell has not been removed.
    pub fn is_cell_alive(&self, id: CellId) -> bool {
        self.cell_alive[id.index()]
    }

    /// Looks a live cell up by instance name.
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        let slot = self.find_cell_slot(name)?;
        let id = CellId::from_index(slot as usize);
        self.cell_alive[id.index()].then_some(id)
    }

    /// Iterates over live cells as `(id, cell)`.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, Cell<'_>)> {
        (0..self.cell_name.len())
            .filter(|&i| self.cell_alive[i])
            .map(|i| (CellId::from_index(i), self.cell(CellId::from_index(i))))
    }

    /// Iterates over the ids of live cells (no view construction).
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cell_name.len())
            .filter(|&i| self.cell_alive[i])
            .map(CellId::from_index)
    }

    /// Number of live cells.
    pub fn cell_count(&self) -> usize {
        self.cell_name.len() - self.dead_cells
    }

    /// Removes (tombstones) a cell. Its name becomes reusable.
    pub fn remove_cell(&mut self, id: CellId) {
        let i = id.index();
        if self.cell_alive[i] {
            self.cell_alive[i] = false;
            self.dead_cells += 1;
            slot_set(&mut self.sym_cell, self.cell_name[i], UNBOUND);
            // A taken `prefix_N` name may now be free again; invalidate the
            // unique-name probe hints.
            self.syms.bump_epoch();
        }
    }

    /// Pin connections of cell `id` as `(pin_symbol, connection)`.
    pub fn cell_pins(&self, id: CellId) -> &[(Symbol, Conn)] {
        let i = id.index();
        let (s, l) = (self.pin_start[i] as usize, self.pin_len[i] as usize);
        &self.pins[s..s + l]
    }

    /// Reconnects pin `pin` of cell `id` to `conn`, adding the pin if absent.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds for this module.
    pub fn set_pin(&mut self, id: CellId, pin: &str, conn: Conn) {
        let sym = self.syms.intern(pin);
        self.set_pin_sym(id, sym, conn);
    }

    /// [`Module::set_pin`] with a pre-interned pin name.
    pub fn set_pin_sym(&mut self, id: CellId, pin: Symbol, conn: Conn) {
        let i = id.index();
        let (s, l) = (self.pin_start[i] as usize, self.pin_len[i] as usize);
        if let Some(slot) = self.pins[s..s + l].iter_mut().find(|(p, _)| *p == pin) {
            slot.1 = conn;
            return;
        }
        // Appending: relocate the cell's pin range to the end of the flat
        // table unless it already is the tail.
        if s + l != self.pins.len() {
            let range: Vec<(Symbol, Conn)> = self.pins[s..s + l].to_vec();
            self.pin_start[i] = self.pins.len() as u32;
            self.pins.extend(range);
        }
        self.pins.push((pin, conn));
        self.pin_len[i] += 1;
    }

    /// Marks a cell `size_only` so backend optimization may not restructure it.
    pub fn set_size_only(&mut self, id: CellId, size_only: bool) {
        self.cell_size_only[id.index()] = size_only;
    }

    /// Rewrites every connection to `from` so it points at `to` instead.
    pub fn rewire_net(&mut self, from: NetId, to: Conn) {
        for i in 0..self.cell_name.len() {
            if !self.cell_alive[i] {
                continue;
            }
            let (s, l) = (self.pin_start[i] as usize, self.pin_len[i] as usize);
            for (_, conn) in self.pins[s..s + l].iter_mut() {
                if *conn == Conn::Net(from) {
                    *conn = to;
                }
            }
        }
    }

    /// Rewrites many nets in a single pass over all cells.
    ///
    /// Equivalent to calling [`Module::rewire_net`] for every map entry, but
    /// O(pins) instead of O(nets × pins).
    pub fn rewire_many(&mut self, map: &HashMap<NetId, Conn>) {
        if map.is_empty() {
            return;
        }
        for i in 0..self.cell_name.len() {
            if !self.cell_alive[i] {
                continue;
            }
            let (s, l) = (self.pin_start[i] as usize, self.pin_len[i] as usize);
            for (_, conn) in self.pins[s..s + l].iter_mut() {
                if let Conn::Net(n) = conn {
                    if let Some(to) = map.get(n) {
                        *conn = *to;
                    }
                }
            }
        }
    }

    /// Records that `net` is tied to the constant `value` by a continuous
    /// assignment (`assign net = 1'b0/1`).
    pub fn add_const_tie(&mut self, net: NetId, value: bool) {
        if !self.const_ties.iter().any(|(n, _)| *n == net) {
            self.const_ties.push((net, value));
        }
    }

    /// Constant continuous-assignment ties recorded on this module.
    pub fn const_ties(&self) -> &[(NetId, bool)] {
        &self.const_ties
    }

    // ---- connectivity ---------------------------------------------------

    /// Builds the driver/load tables for the current netlist state.
    ///
    /// Pin directions are resolved once per distinct `(cell kind, pin name)`
    /// pair and cached; the load lists are laid out as one CSR
    /// (offsets + flat items) structure.
    ///
    /// # Errors
    /// Returns [`NetlistError::MultipleDrivers`] if two endpoints drive one
    /// net, and [`NetlistError::UnknownName`] if a pin direction cannot be
    /// resolved by `dirs`.
    pub fn connectivity(&self, dirs: &impl PinDirs) -> Result<Connectivity, NetlistError> {
        let nets = self.net_name.len();
        let mut drivers: Vec<Option<Endpoint>> = vec![None; nets];
        let mut load_count: Vec<u32> = vec![0; nets];
        let mut dir_cache: HashMap<(CellKind, Symbol), PortDir> = HashMap::new();

        // Pass 1 (ports, then live cells, in id order — the order the load
        // lists are filled in): assign drivers, count loads, resolve
        // directions. Errors fire at the same endpoint as a naive
        // single-pass build.
        for (pid, port) in self.ports() {
            match port.dir {
                PortDir::Input => {
                    if drivers[port.net.index()].is_some() {
                        return Err(NetlistError::MultipleDrivers {
                            net: self.net(port.net).name.to_owned(),
                        });
                    }
                    drivers[port.net.index()] = Some(Endpoint::Port(pid));
                }
                PortDir::Output | PortDir::Inout => {
                    load_count[port.net.index()] += 1;
                }
            }
        }
        for i in 0..self.cell_name.len() {
            if !self.cell_alive[i] {
                continue;
            }
            let kind = self.cell_kind[i];
            let (s, l) = (self.pin_start[i] as usize, self.pin_len[i] as usize);
            for (idx, &(pin, conn)) in self.pins[s..s + l].iter().enumerate() {
                let Conn::Net(net) = conn else { continue };
                let dir = match dir_cache.get(&(kind, pin)) {
                    Some(&d) => d,
                    None => {
                        let d = dirs
                            .pin_dir(self.kind_ref(kind), self.syms.resolve(pin))
                            .ok_or_else(|| NetlistError::UnknownName {
                                kind: "pin",
                                name: format!(
                                    "{}/{}",
                                    self.syms.resolve(kind.sym()),
                                    self.syms.resolve(pin)
                                ),
                            })?;
                        dir_cache.insert((kind, pin), d);
                        d
                    }
                };
                match dir {
                    PortDir::Output => {
                        if drivers[net.index()].is_some() {
                            return Err(NetlistError::MultipleDrivers {
                                net: self.net(net).name.to_owned(),
                            });
                        }
                        drivers[net.index()] = Some(Endpoint::Pin(PinUse {
                            cell: CellId::from_index(i),
                            pin: idx as u32,
                        }));
                    }
                    PortDir::Input | PortDir::Inout => load_count[net.index()] += 1,
                }
            }
        }

        // CSR offsets from the counts.
        let mut load_start: Vec<u32> = Vec::with_capacity(nets + 1);
        let mut total = 0u32;
        for &c in &load_count {
            load_start.push(total);
            total += c;
        }
        load_start.push(total);

        // Pass 2: fill the flat load table in the same endpoint order as
        // pass 1, so per-net load order matches the historical
        // `Vec<Vec<_>>` build exactly.
        let mut cursor: Vec<u32> = load_start[..nets].to_vec();
        let mut load_items: Vec<Endpoint> = vec![Endpoint::Port(PortId::from_index(0)); total as usize];
        let mut push_load = |net: NetId, ep: Endpoint, cursor: &mut Vec<u32>| {
            let c = &mut cursor[net.index()];
            load_items[*c as usize] = ep;
            *c += 1;
        };
        for (pid, port) in self.ports() {
            match port.dir {
                PortDir::Input => {}
                PortDir::Output | PortDir::Inout => {
                    push_load(port.net, Endpoint::Port(pid), &mut cursor);
                }
            }
        }
        for i in 0..self.cell_name.len() {
            if !self.cell_alive[i] {
                continue;
            }
            let kind = self.cell_kind[i];
            let (s, l) = (self.pin_start[i] as usize, self.pin_len[i] as usize);
            for (idx, &(pin, conn)) in self.pins[s..s + l].iter().enumerate() {
                let Conn::Net(net) = conn else { continue };
                let dir = dir_cache[&(kind, pin)];
                match dir {
                    PortDir::Output => {}
                    PortDir::Input | PortDir::Inout => {
                        let ep = Endpoint::Pin(PinUse {
                            cell: CellId::from_index(i),
                            pin: idx as u32,
                        });
                        push_load(net, ep, &mut cursor);
                    }
                }
            }
        }

        Ok(Connectivity {
            drivers,
            load_start,
            load_items,
        })
    }
}

/// Driver/load tables for one [`Module`], built by [`Module::connectivity`].
///
/// Load lists are stored in CSR form: `load_start[n]..load_start[n+1]`
/// slices one flat endpoint array. One snapshot, two allocations.
#[derive(Debug, Clone)]
pub struct Connectivity {
    drivers: Vec<Option<Endpoint>>,
    load_start: Vec<u32>,
    load_items: Vec<Endpoint>,
}

impl Connectivity {
    /// The endpoint driving `net`, if any.
    pub fn driver(&self, net: NetId) -> Option<Endpoint> {
        self.drivers[net.index()]
    }

    /// The endpoints loading (reading) `net`.
    pub fn loads(&self, net: NetId) -> &[Endpoint] {
        let s = self.load_start[net.index()] as usize;
        let e = self.load_start[net.index() + 1] as usize;
        &self.load_items[s..e]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dirs(kind: KindRef<'_>, pin: &str) -> Option<PortDir> {
        let _ = kind;
        match pin {
            "Z" | "Q" => Some(PortDir::Output),
            _ => Some(PortDir::Input),
        }
    }

    fn inv(module: &mut Module, name: &str, a: NetId, z: NetId) -> CellId {
        module
            .add_cell(name, "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(z))])
            .expect("fresh name")
    }

    #[test]
    fn build_and_query() {
        let mut m = Module::new("top");
        let a = m.add_port("a", PortDir::Input).unwrap();
        let z = m.add_port("z", PortDir::Output).unwrap();
        let mid = m.add_net("mid").unwrap();
        let a_net = m.port(a).net;
        let z_net = m.port(z).net;
        let u1 = inv(&mut m, "u1", a_net, mid);
        let u2 = inv(&mut m, "u2", mid, z_net);
        assert_eq!(m.cell_count(), 2);
        assert_eq!(m.find_cell("u1"), Some(u1));
        assert_eq!(m.cell(u2).pin("A"), Some(Conn::Net(mid)));

        let conn = m.connectivity(&dirs).unwrap();
        assert_eq!(
            conn.driver(mid),
            Some(Endpoint::Pin(PinUse { cell: u1, pin: 1 }))
        );
        assert_eq!(conn.loads(mid).len(), 1);
        assert_eq!(conn.driver(a_net), Some(Endpoint::Port(a)));
        assert_eq!(conn.loads(z_net), &[Endpoint::Port(z)]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = Module::new("top");
        m.add_net("n").unwrap();
        assert!(matches!(
            m.add_net("n"),
            Err(NetlistError::DuplicateName { kind: "net", .. })
        ));
        let n = m.find_net("n").unwrap();
        inv(&mut m, "u", n, n);
        assert!(m.add_cell("u", "BUFX1", &[("A", Conn::Net(n))]).is_err());
    }

    #[test]
    fn multiple_drivers_detected() {
        let mut m = Module::new("top");
        let n = m.add_net("n").unwrap();
        let a = m.add_net("a").unwrap();
        inv(&mut m, "u1", a, n);
        inv(&mut m, "u2", a, n);
        assert!(matches!(
            m.connectivity(&dirs),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn remove_cell_frees_name_and_updates_count() {
        let mut m = Module::new("top");
        let n = m.add_net("n").unwrap();
        let u = inv(&mut m, "u", n, n);
        m.remove_cell(u);
        assert_eq!(m.cell_count(), 0);
        assert_eq!(m.find_cell("u"), None);
        assert!(!m.is_cell_alive(u));
        // Name is reusable after removal.
        inv(&mut m, "u", n, n);
        assert_eq!(m.cell_count(), 1);
    }

    #[test]
    fn rewire_net_redirects_connections() {
        let mut m = Module::new("top");
        let a = m.add_net("a").unwrap();
        let b = m.add_net("b").unwrap();
        let u = inv(&mut m, "u", a, b);
        m.rewire_net(a, Conn::Const1);
        assert_eq!(m.cell(u).pin("A"), Some(Conn::Const1));
        assert_eq!(m.cell(u).pin("Z"), Some(Conn::Net(b)));
    }

    #[test]
    fn unique_names_do_not_collide() {
        let mut m = Module::new("top");
        m.add_net("x").unwrap();
        let name = m.unique_net_name("x");
        assert_ne!(name, "x");
        m.add_net(name).unwrap();
    }

    #[test]
    fn unique_names_match_naive_probing() {
        // The per-prefix cache must return exactly what a fresh linear
        // probe from the container length would.
        let naive = |m: &Module, prefix: &str| -> String {
            if m.find_net(prefix).is_none() {
                return prefix.to_owned();
            }
            let mut i = m.net_count();
            loop {
                let c = format!("{prefix}_{i}");
                if m.find_net(&c).is_none() {
                    return c;
                }
                i += 1;
            }
        };
        let mut m = Module::new("top");
        m.add_net("p").unwrap();
        // Pre-take a dense range so probing has something to skip.
        for i in 0..40 {
            m.add_net(format!("p_{i}")).unwrap();
        }
        for _ in 0..10 {
            let expect = naive(&m, "p");
            let got = m.unique_net_name("p");
            assert_eq!(got, expect);
            m.add_net(got).unwrap();
        }
        // An unregistered probe result must be returned again.
        let a = m.unique_net_name("p");
        let b = m.unique_net_name("p");
        assert_eq!(a, b);
    }

    #[test]
    fn unique_cell_names_survive_removal() {
        let mut m = Module::new("top");
        let n = m.add_net("n").unwrap();
        inv(&mut m, "u", n, n);
        for _ in 0..3 {
            let name = m.unique_cell_name("u");
            inv(&mut m, &name, n, n);
        }
        // Removing a minted cell frees its name; the next unique name may
        // not collide with any live cell.
        let victim = m.find_cell("u_3").unwrap();
        m.remove_cell(victim);
        let name = m.unique_cell_name("u");
        assert!(m.find_cell(&name).is_none());
        m.add_cell(&name, "INVX1", &[("A", Conn::Net(n))]).unwrap();
    }

    #[test]
    fn set_pin_appends_with_relocation() {
        let mut m = Module::new("top");
        let a = m.add_net("a").unwrap();
        let b = m.add_net("b").unwrap();
        let u1 = inv(&mut m, "u1", a, b);
        let u2 = inv(&mut m, "u2", b, a);
        // u1's pin range is not the tail; appending must relocate it.
        m.set_pin(u1, "EN", Conn::Const1);
        assert_eq!(m.cell(u1).pin("A"), Some(Conn::Net(a)));
        assert_eq!(m.cell(u1).pin("Z"), Some(Conn::Net(b)));
        assert_eq!(m.cell(u1).pin("EN"), Some(Conn::Const1));
        assert_eq!(m.cell(u1).pins().len(), 3);
        assert_eq!(m.cell(u2).pins().len(), 2);
        assert_eq!(m.cell(u2).pin("A"), Some(Conn::Net(b)));
    }

    #[test]
    fn bus_bits_are_inferred() {
        let mut m = Module::new("top");
        let n = m.add_net("data[5]").unwrap();
        let bus = m.net(n).bus.unwrap();
        assert_eq!(bus.base, "data");
        assert_eq!(bus.index, 5);
        let plain = m.add_net("clk").unwrap();
        assert!(m.net(plain).bus.is_none());
    }
}
