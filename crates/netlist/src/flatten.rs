//! Hierarchy flattening.
//!
//! The desynchronizer emits controllers, delay elements and composite
//! latches as submodule instances; simulation and final layout work on the
//! flattened circuit. Flattening inlines every [`CellKind::Instance`] cell
//! recursively, prefixing inner object names with `instance/`.

use std::collections::HashMap;

use crate::{Conn, Design, KindRef, Module, ModuleId, NetId, NetlistError};

/// Deepest instance nesting the flattener follows. Real designs are a
/// handful of levels; anything past this is either generated pathology or
/// a recursive instantiation, and either would otherwise overflow the
/// stack (which no error path can recover from).
const MAX_FLATTEN_DEPTH: usize = 64;

/// Flattens `design` starting at `top`, returning a module containing only
/// library cells.
///
/// Inner nets and cells are renamed `instance/inner`. Submodule port nets
/// are merged with the nets connected at the instantiation site;
/// unconnected submodule inputs become dangling nets.
///
/// # Errors
/// Returns [`NetlistError::UnknownName`] if an instance references a
/// module that does not exist, [`NetlistError::Unsupported`] if instances
/// nest deeper than [`MAX_FLATTEN_DEPTH`] levels (which catches recursive
/// instantiation), and propagates name-collision errors (which cannot
/// happen for names produced by the `/` prefixing scheme unless the design
/// already uses such names).
pub fn flatten(design: &Design, top: ModuleId) -> Result<Module, NetlistError> {
    let src = design.module(top);
    let mut out = Module::new(src.name.clone());
    // Copy ports (and their nets).
    for (_, port) in src.ports() {
        out.add_port(port.name, port.dir)?;
    }
    let mut net_map: HashMap<NetId, NetId> = HashMap::new();
    for (_, port) in src.ports() {
        let name = src.net(port.net).name;
        let new = out.find_net(name).ok_or_else(|| NetlistError::UnknownName {
            kind: "net",
            name: name.to_owned(),
        })?;
        net_map.insert(port.net, new);
    }
    flatten_into(design, top, "", &mut out, &mut net_map, 0)?;
    Ok(out)
}

/// Checked [`HashMap`] lookup: a cell pin or tie referencing a net the
/// module never declared means the netlist is internally inconsistent
/// (e.g. a [`NetId`] smuggled in from another module) — report it instead
/// of panicking on the index.
fn mapped(
    net_map: &HashMap<NetId, NetId>,
    module: &Module,
    net: NetId,
) -> Result<NetId, NetlistError> {
    net_map.get(&net).copied().ok_or_else(|| NetlistError::UnknownName {
        kind: "net",
        name: module.net(net).name.to_owned(),
    })
}

/// Recursively copies `module`'s contents into `out` with `prefix`.
/// `net_map` maps the module's nets to nets of `out` (pre-seeded with port
/// bindings).
fn flatten_into(
    design: &Design,
    module_id: ModuleId,
    prefix: &str,
    out: &mut Module,
    net_map: &mut HashMap<NetId, NetId>,
    depth: usize,
) -> Result<(), NetlistError> {
    if depth > MAX_FLATTEN_DEPTH {
        return Err(NetlistError::Unsupported {
            line: 0,
            message: format!(
                "instance hierarchy deeper than {MAX_FLATTEN_DEPTH} levels at `{prefix}` \
                 (recursive instantiation?)"
            ),
        });
    }
    let module = design.module(module_id);

    // Create all unmapped nets.
    for (nid, net) in module.nets() {
        if let std::collections::hash_map::Entry::Vacant(e) = net_map.entry(nid) {
            let name = format!("{prefix}{}", net.name);
            let new = match out.find_net(&name) {
                Some(existing) => existing,
                None => out.add_net(name)?,
            };
            e.insert(new);
        }
    }
    // Constant ties propagate.
    for &(net, value) in module.const_ties() {
        let mapped_net = mapped(net_map, module, net)?;
        out.add_const_tie(mapped_net, value);
    }

    for (_, cell) in module.cells() {
        match cell.kind_ref() {
            KindRef::Lib(lib_name) => {
                // Pin names and the library-cell name cross the symbol
                // boundary here: they are re-interned in `out`'s table.
                let pins: Vec<(&str, Conn)> = cell
                    .pins()
                    .iter()
                    .enumerate()
                    .map(|(i, (_, c))| {
                        let conn = match c {
                            Conn::Net(n) => Conn::Net(mapped(net_map, module, *n)?),
                            other => *other,
                        };
                        Ok((cell.pin_name(i), conn))
                    })
                    .collect::<Result<_, NetlistError>>()?;
                let kind = out.lib_kind(lib_name);
                let id = out.add_cell_of_kind(format!("{prefix}{}", cell.name), kind, &pins)?;
                out.set_size_only(id, cell.size_only);
            }
            KindRef::Instance(sub_name) => {
                let sub_id =
                    design
                        .find_module(sub_name)
                        .ok_or_else(|| NetlistError::UnknownName {
                            kind: "module",
                            name: sub_name.to_owned(),
                        })?;
                let sub = design.module(sub_id);
                let sub_prefix = format!("{prefix}{}/", cell.name);
                // Bind submodule port nets to the instantiation conns.
                let mut sub_map: HashMap<NetId, NetId> = HashMap::new();
                for (_, port) in sub.ports() {
                    let conn = cell.pin(port.name).unwrap_or(Conn::Open);
                    let outer = match conn {
                        Conn::Net(n) => Some(mapped(net_map, module, n)?),
                        Conn::Const0 | Conn::Const1 => {
                            // Tie: create a net and record the constant.
                            let net = out.add_net(format!("{sub_prefix}{}", port.name))?;
                            out.add_const_tie(net, conn == Conn::Const1);
                            Some(net)
                        }
                        Conn::Open => None,
                    };
                    if let Some(outer) = outer {
                        sub_map.insert(port.net, outer);
                    }
                }
                flatten_into(design, sub_id, &sub_prefix, out, &mut sub_map, depth + 1)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortDir;

    fn two_level_design() -> Design {
        let mut d = Design::new();
        let top = d.add_module("top");
        let sub = d.add_module("pair");
        {
            let m = d.module_mut(sub);
            m.add_port("in1", PortDir::Input).unwrap();
            m.add_port("out1", PortDir::Output).unwrap();
            let i = m.find_net("in1").unwrap();
            let o = m.find_net("out1").unwrap();
            let mid = m.add_net("mid").unwrap();
            m.add_cell("g1", "INVX1", &[("A", Conn::Net(i)), ("Z", Conn::Net(mid))])
                .unwrap();
            m.add_cell("g2", "INVX1", &[("A", Conn::Net(mid)), ("Z", Conn::Net(o))])
                .unwrap();
        }
        {
            let m = d.module_mut(top);
            m.add_port("a", PortDir::Input).unwrap();
            m.add_port("z", PortDir::Output).unwrap();
            let a = m.find_net("a").unwrap();
            let z = m.find_net("z").unwrap();
            let mid = m.add_net("mid").unwrap();
            m.add_instance("u1", "pair", &[("in1", Conn::Net(a)), ("out1", Conn::Net(mid))])
                .unwrap();
            m.add_instance("u2", "pair", &[("in1", Conn::Net(mid)), ("out1", Conn::Net(z))])
                .unwrap();
        }
        d
    }

    #[test]
    fn flattens_two_levels() {
        let d = two_level_design();
        let flat = flatten(&d, d.top()).unwrap();
        assert_eq!(flat.cell_count(), 4);
        assert!(flat.find_cell("u1/g1").is_some());
        assert!(flat.find_cell("u2/g2").is_some());
        assert!(flat.find_net("u1/mid").is_some());
        // The instance boundary nets are merged: u1/out1 does not exist as
        // a separate net; u1/g2's Z drives top-level `mid`.
        let g2 = flat.find_cell("u1/g2").unwrap();
        let mid = flat.find_net("mid").unwrap();
        assert_eq!(flat.cell(g2).pin("Z"), Some(Conn::Net(mid)));
        // Ports survive.
        assert_eq!(flat.port_count(), 2);
    }

    #[test]
    fn constant_instance_connections_become_ties() {
        let mut d = two_level_design();
        let top = d.top();
        let m = d.module_mut(top);
        let z2 = m.add_net("z2").unwrap();
        m.add_instance("u3", "pair", &[("in1", Conn::Const1), ("out1", Conn::Net(z2))])
            .unwrap();
        let flat = flatten(&d, d.top()).unwrap();
        let tie_net = flat.find_net("u3/in1").expect("tie net exists");
        assert!(flat
            .const_ties()
            .iter()
            .any(|&(n, v)| n == tie_net && v));
    }

    #[test]
    fn unknown_submodule_is_an_error() {
        let mut d = Design::new();
        let top = d.add_module("top");
        let m = d.module_mut(top);
        let n = m.add_net("n").unwrap();
        m.add_instance("u", "ghost", &[("p", Conn::Net(n))]).unwrap();
        assert!(matches!(
            flatten(&d, d.top()),
            Err(NetlistError::UnknownName { kind: "module", .. })
        ));
    }

    #[test]
    fn recursive_instantiation_is_an_error_not_a_stack_overflow() {
        let mut d = Design::new();
        let top = d.add_module("top");
        let looper = d.add_module("looper");
        {
            let m = d.module_mut(looper);
            m.add_port("x", PortDir::Input).unwrap();
            let x = m.find_net("x").unwrap();
            m.add_instance("again", "looper", &[("x", Conn::Net(x))]).unwrap();
        }
        {
            let m = d.module_mut(top);
            m.add_port("a", PortDir::Input).unwrap();
            let a = m.find_net("a").unwrap();
            m.add_instance("u", "looper", &[("x", Conn::Net(a))]).unwrap();
        }
        let err = flatten(&d, d.top()).unwrap_err();
        assert!(
            matches!(&err, NetlistError::Unsupported { message, .. }
                if message.contains("deeper than")),
            "{err}"
        );
    }

    #[test]
    fn nested_hierarchy() {
        let mut d = Design::new();
        let top = d.add_module("top");
        let mid = d.add_module("mid");
        let leaf = d.add_module("leaf");
        {
            let m = d.module_mut(leaf);
            m.add_port("x", PortDir::Input).unwrap();
            m.add_port("y", PortDir::Output).unwrap();
            let x = m.find_net("x").unwrap();
            let y = m.find_net("y").unwrap();
            m.add_cell("i", "INVX1", &[("A", Conn::Net(x)), ("Z", Conn::Net(y))])
                .unwrap();
        }
        {
            let m = d.module_mut(mid);
            m.add_port("p", PortDir::Input).unwrap();
            m.add_port("q", PortDir::Output).unwrap();
            let p = m.find_net("p").unwrap();
            let q = m.find_net("q").unwrap();
            m.add_instance("l", "leaf", &[("x", Conn::Net(p)), ("y", Conn::Net(q))])
                .unwrap();
        }
        {
            let m = d.module_mut(top);
            m.add_port("a", PortDir::Input).unwrap();
            m.add_port("z", PortDir::Output).unwrap();
            let a = m.find_net("a").unwrap();
            let z = m.find_net("z").unwrap();
            m.add_instance("m", "mid", &[("p", Conn::Net(a)), ("q", Conn::Net(z))])
                .unwrap();
        }
        let flat = flatten(&d, d.top()).unwrap();
        assert_eq!(flat.cell_count(), 1);
        assert!(flat.find_cell("m/l/i").is_some());
    }
}
