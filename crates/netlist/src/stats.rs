//! Netlist statistics: the raw material of the paper's area tables
//! (Table 5.1 / Table 5.2 rows: `# nets`, `# cells`, cell area,
//! combinational vs sequential area).

use crate::{Conn, KindRef, Module};

/// Basic object counts of a module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Nets referenced by at least one live pin, port or constant tie.
    pub nets: usize,
    /// Live cells.
    pub cells: usize,
    /// Module ports.
    pub ports: usize,
}

/// Counts live objects in `module`.
pub fn counts(module: &Module) -> Counts {
    let mut used = vec![false; module.net_count()];
    for (_, p) in module.ports() {
        used[p.net.index()] = true;
    }
    for (_, c) in module.cells() {
        for (_, conn) in c.pins() {
            if let Conn::Net(n) = conn {
                used[n.index()] = true;
            }
        }
    }
    for &(n, _) in module.const_ties() {
        used[n.index()] = true;
    }
    Counts {
        nets: used.iter().filter(|u| **u).count(),
        cells: module.cell_count(),
        ports: module.port_count(),
    }
}

/// Area split between combinational and sequential logic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AreaBreakdown {
    /// Total cell area.
    pub cell_area: f64,
    /// Area of combinational cells.
    pub combinational: f64,
    /// Area of sequential cells (flip-flops, latches, C-elements).
    pub sequential: f64,
}

/// Computes the module's area breakdown.
///
/// `area_of` maps a cell kind to its area (module instances should report
/// their flattened contents' area); `is_sequential` classifies kinds.
pub fn area_breakdown(
    module: &Module,
    mut area_of: impl FnMut(KindRef<'_>) -> f64,
    mut is_sequential: impl FnMut(KindRef<'_>) -> bool,
) -> AreaBreakdown {
    let mut b = AreaBreakdown::default();
    for (_, cell) in module.cells() {
        let a = area_of(cell.kind_ref());
        b.cell_area += a;
        if is_sequential(cell.kind_ref()) {
            b.sequential += a;
        } else {
            b.combinational += a;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortDir;

    #[test]
    fn counts_ignore_orphan_nets_and_dead_cells() {
        let mut m = Module::new("t");
        m.add_port("a", PortDir::Input).unwrap();
        let a = m.find_net("a").unwrap();
        let z = m.add_net("z").unwrap();
        m.add_net("orphan").unwrap();
        let u = m
            .add_cell("u", "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Net(z))])
            .unwrap();
        let c = counts(&m);
        assert_eq!(c, Counts { nets: 2, cells: 1, ports: 1 });
        m.remove_cell(u);
        let c = counts(&m);
        assert_eq!(c.cells, 0);
        assert_eq!(c.nets, 1); // only the port net remains referenced
    }

    #[test]
    fn area_split() {
        let mut m = Module::new("t");
        let n = m.add_net("n").unwrap();
        m.add_cell("u1", "INVX1", &[("A", Conn::Net(n))]).unwrap();
        m.add_cell("r1", "DFFX1", &[("D", Conn::Net(n))]).unwrap();
        let b = area_breakdown(
            &m,
            |k| if k.name() == "DFFX1" { 5.0 } else { 1.5 },
            |k: KindRef<'_>| k.name() == "DFFX1",
        );
        assert_eq!(b.cell_area, 6.5);
        assert_eq!(b.combinational, 1.5);
        assert_eq!(b.sequential, 5.0);
    }
}
