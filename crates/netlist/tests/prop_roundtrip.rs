//! Property: writing any constructible netlist as Verilog and parsing it
//! back is a structural identity (and a textual fixed point).

use drd_check::{prop, Rng};
use drd_netlist::{Conn, Design, Module, PortDir};

/// Builds a random but well-formed gate-level module from a recipe of
/// small integers.
fn build(recipe: &[u8], buses: bool) -> Design {
    let mut m = Module::new("t");
    m.add_port("clk", PortDir::Input).unwrap();
    let clk = m.find_net("clk").unwrap();
    let mut nets = vec![clk];
    for (i, &b) in recipe.iter().enumerate() {
        let name = if buses && b % 3 == 0 {
            format!("bus{}[{}]", b % 5, i)
        } else {
            format!("n{i}")
        };
        nets.push(m.add_net(name).unwrap());
    }
    for (i, &b) in recipe.iter().enumerate() {
        let a = nets[(b as usize) % (nets.len() - 1)];
        let z = nets[i + 1];
        match b % 4 {
            0 => {
                m.add_cell(
                    format!("u{i}"),
                    "INVX1",
                    &[("A", Conn::Net(a)), ("Z", Conn::Net(z))],
                )
                .unwrap();
            }
            1 => {
                let c = nets[(b as usize / 4) % (nets.len() - 1)];
                m.add_cell(
                    format!("u{i}"),
                    "NAND2X1",
                    &[("A", Conn::Net(a)), ("B", Conn::Net(c)), ("Z", Conn::Net(z))],
                )
                .unwrap();
            }
            2 => {
                m.add_cell(
                    format!("u{i}"),
                    "DFFX1",
                    &[("D", Conn::Net(a)), ("CK", Conn::Net(clk)), ("Q", Conn::Net(z))],
                )
                .unwrap();
            }
            _ => {
                m.add_cell(
                    format!("u{i}"),
                    "AND2X1",
                    &[("A", Conn::Net(a)), ("B", Conn::Const1), ("Z", Conn::Net(z))],
                )
                .unwrap();
            }
        }
    }
    let mut d = Design::new();
    d.insert(m);
    d
}

fn recipe_strategy(rng: &mut Rng) -> (Vec<u8>, bool) {
    let len = rng.range(1, 40);
    (rng.bytes(len), rng.coin())
}

#[test]
fn write_parse_is_identity() {
    prop(64, recipe_strategy, |(recipe, buses): &(Vec<u8>, bool)| {
        if recipe.is_empty() {
            return Ok(());
        }
        let design = build(recipe, *buses);
        let text1 = drd_netlist::verilog::write_design(&design);
        let parsed =
            drd_netlist::verilog::parse_design(&text1).map_err(|e| format!("parse: {e}"))?;
        let text2 = drd_netlist::verilog::write_design(&parsed);
        if text1 != text2 {
            return Err("write→parse→write is not a fixed point".into());
        }
        // Structural identity: same cells with same kinds and pin nets.
        let (a, b) = (design.top_module(), parsed.top_module());
        if a.cell_count() != b.cell_count() {
            return Err(format!("{} vs {} cells", a.cell_count(), b.cell_count()));
        }
        for (_, cell) in a.cells() {
            let other = b
                .find_cell(cell.name)
                .ok_or_else(|| format!("cell {} lost", cell.name))?;
            let other = b.cell(other);
            if cell.kind_ref() != other.kind_ref() {
                return Err(format!(
                    "{}: kind {:?} vs {:?}",
                    cell.name,
                    cell.kind_ref(),
                    other.kind_ref()
                ));
            }
            for (i, &(_, conn)) in cell.pins().iter().enumerate() {
                let pin = cell.pin_name(i);
                let oc = other
                    .pin(pin)
                    .ok_or_else(|| format!("{}: pin {pin} lost", cell.name))?;
                match (conn, oc) {
                    (Conn::Net(x), Conn::Net(y)) => {
                        if a.net(x).name != b.net(y).name {
                            return Err(format!(
                                "{}/{pin}: net {} vs {}",
                                cell.name,
                                a.net(x).name,
                                b.net(y).name
                            ));
                        }
                    }
                    (x, y) => {
                        if x != y {
                            return Err(format!("{}/{pin}: {x:?} vs {y:?}", cell.name));
                        }
                    }
                }
            }
        }
        Ok(())
    });
}

#[test]
fn blif_export_never_panics() {
    prop(
        64,
        |rng: &mut Rng| {
            let len = rng.range(1, 40);
            rng.bytes(len)
        },
        |recipe: &Vec<u8>| {
            if recipe.is_empty() {
                return Ok(());
            }
            let design = build(recipe, true);
            let blif = drd_netlist::blif::write_blif(design.top_module());
            if !blif.starts_with(".model") {
                return Err("missing .model header".into());
            }
            if !blif.ends_with(".end\n") {
                return Err("missing .end trailer".into());
            }
            Ok(())
        },
    );
}
