//! A handwritten post-synthesis-style netlist exercising the structural
//! Verilog subset end to end.

const FIXTURE: &str = r#"
// post-synthesis netlist, classic header style
module chip (clk, rst_n, \data-in , dout, status);
  input clk;
  input rst_n;
  input [3:0] \data-in ;
  output [3:0] dout;
  output status;
  wire [3:0] stage1;
  wire n1, n2;
  tri shared;

  /* the synthesis tool left an alias and a constant tie */
  assign n2 = n1;
  assign shared = 1'b1;

  DFFRX1 r0 (.D(\data-in [0]), .RN(rst_n), .CK(clk), .Q(stage1[0]));
  DFFRX1 r1 (.D(\data-in [1]), .RN(rst_n), .CK(clk), .Q(stage1[1]));
  DFFRX1 r2 (.D(\data-in [2]), .RN(rst_n), .CK(clk), .Q(stage1[2])),
         r3 (.D(\data-in [3]), .RN(rst_n), .CK(clk), .Q(stage1[3]));

  NAND2X1 g0 (.A(stage1[0]), .B(shared), .Z(n1));
  SUBBLK u0 (.in1(stage1[3:2]), .out1(status));

  DFFX1 o0 (.D(n2), .CK(clk), .Q(dout[0]));
  DFFX1 o1 (.D(stage1[1]), .CK(clk), .Q(dout[1]));
  DFFX1 o2 (.D(1'b0), .CK(clk), .Q(dout[2]));
  DFFX1 o3 (.D(stage1[3]), .CK(clk), .Q(dout[3]));
endmodule

module SUBBLK (input [1:0] in1, output out1);
  XOR2X1 x (.A(in1[1]), .B(in1[0]), .Z(out1));
endmodule
"#;

#[test]
fn fixture_parses_flattens_and_roundtrips() {
    let design = drd_netlist::verilog::parse_design(FIXTURE).unwrap();
    let top = design.module(design.find_module("chip").unwrap());
    // Escaped bus survived with sanitized base + bus identity.
    assert!(top.find_net("data_in[0]").is_some());
    // Alias n2 = n1 merged.
    let o0 = top.find_cell("o0").unwrap();
    let n1 = top.find_net("n1").unwrap();
    assert_eq!(top.cell(o0).pin("D"), Some(drd_netlist::Conn::Net(n1)));
    // Constant tie propagated into g0's input.
    let g0 = top.find_cell("g0").unwrap();
    assert_eq!(top.cell(g0).pin("B"), Some(drd_netlist::Conn::Const1));
    // Multi-instance statement parsed both.
    assert!(top.find_cell("r2").is_some() && top.find_cell("r3").is_some());
    // Hierarchy flattens.
    let flat = drd_netlist::flatten(&design, design.top()).unwrap();
    assert!(flat.find_cell("u0/x").is_some());
    // Round trip is a fixed point.
    let t1 = drd_netlist::verilog::write_design(&design);
    let again = drd_netlist::verilog::parse_design(&t1).unwrap();
    assert_eq!(t1, drd_netlist::verilog::write_design(&again));
}
