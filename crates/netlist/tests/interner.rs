//! Interner edge cases: escaped Verilog identifiers survive interning
//! byte-for-byte, fuzzed prefixes never produce colliding unique names,
//! and `Symbol` values stay stable while the module is mutated.

use drd_check::{prop, Rng};
use drd_netlist::{Conn, Module, Symbol};

/// Escaped identifiers exercise every character class the interner must
/// treat as opaque bytes: brackets, dots, plus/minus, hashes, spaces are
/// all legal inside a `\escaped ` Verilog name.
const NASTY: &[&str] = &[
    "clk[0]",
    "q+0",
    "n-1",
    "r.in",
    "c#1",
    "a b",
    "u$2",
    "p_3",
    "\\start",
    "net[3][4]",
];

#[test]
fn escaped_identifiers_intern_byte_for_byte() {
    let mut m = Module::new("t");
    let mut ids = Vec::new();
    for &name in NASTY {
        ids.push((m.add_net(name).unwrap(), name));
    }
    for &(id, name) in &ids {
        assert_eq!(m.net(id).name, name, "resolve must not normalize");
        assert_eq!(m.find_net(name), Some(id), "lookup must not normalize");
        let sym = m.net_sym(id);
        assert_eq!(m.symbols().resolve(sym), name);
        assert_eq!(m.symbols().lookup(name), Some(sym));
    }
    // Near-miss names are distinct symbols, not hash-collision aliases.
    assert!(m.find_net("clk[0] ").is_none());
    assert!(m.find_net("clk0").is_none());
    assert!(m.find_net("start").is_none());
}

/// Writing a module whose names need escaping and importing it again
/// follows the documented §3.2.1 contract: the importer *sanitizes*
/// escaped names to simple identifiers (bus bits keep their brackets),
/// nothing is lost, and from the first import on the text is a fixed
/// point — sanitized names intern and round-trip byte-for-byte.
#[test]
fn escaped_identifiers_round_trip_through_write_parse() {
    let mut m = Module::new("t");
    use drd_netlist::PortDir;
    m.add_port("clk[0]", PortDir::Input).unwrap();
    let clk = m.find_net("clk[0]").unwrap();
    let mut prev = clk;
    // A name containing whitespace cannot be written as a Verilog
    // escaped identifier at all (escapes terminate at whitespace), so
    // the write-boundary contract only covers whitespace-free names.
    for (i, &name) in NASTY.iter().enumerate().skip(1).filter(|(_, n)| !n.contains(' ')) {
        let n = m.add_net(name).unwrap();
        m.add_cell(
            format!("g+{i}"),
            "INVX1",
            &[("A", Conn::Net(prev)), ("Z", Conn::Net(n))],
        )
        .unwrap();
        prev = n;
    }
    let mut d = drd_netlist::Design::new();
    d.insert(m);
    let text1 = drd_netlist::verilog::write_design(&d);
    let back = drd_netlist::verilog::parse_design(&text1).expect("escaped output reparses");
    let (a, b) = (d.top_module(), back.top_module());
    assert_eq!(a.net_count(), b.net_count(), "no nets lost to sanitizing");
    assert_eq!(a.cell_count(), b.cell_count(), "no cells lost to sanitizing");
    // Bus-bit names keep their identity verbatim; `$` is a legal simple
    // character and passes through untouched.
    for keep in ["clk[0]", "u$2", "p_3"] {
        assert!(b.find_net(keep).is_some(), "`{keep}` lost:\n{text1}");
    }
    // Once sanitized, the text is a fixed point of write → parse.
    let text2 = drd_netlist::verilog::write_design(&back);
    let again = drd_netlist::verilog::parse_design(&text2).expect("sanitized output reparses");
    assert_eq!(text2, drd_netlist::verilog::write_design(&again), "fixed point");
    // Every sanitized name interns and resolves byte-for-byte.
    for (id, net) in b.nets() {
        let sym = b.net_sym(id);
        assert_eq!(b.symbols().resolve(sym), net.name);
        assert_eq!(b.find_net(net.name), Some(id));
    }
}

/// Fuzzed prefixes — including prefixes that look like already-minted
/// unique names (`p_3`), bracketed bus stems, and prefixes colliding
/// with pre-existing nets — never produce a name that collides.
#[test]
fn fuzzed_prefixes_unique_without_collision() {
    const PREFIXES: &[&str] = &["p", "p_3", "drd_req", "a[1]", "x y", "", "_", "n#"];
    prop(
        128,
        |rng: &mut Rng| {
            let n_picks = rng.range(1, 24);
            let picks: Vec<u8> = rng.bytes(n_picks);
            let n_taken = rng.range(0, 8);
            let pre_taken: Vec<u8> = rng.bytes(n_taken);
            (picks, pre_taken)
        },
        |(picks, pre_taken): &(Vec<u8>, Vec<u8>)| {
            let mut m = Module::new("t");
            // Pre-occupy names the minting must skip over.
            for &b in pre_taken {
                let p = PREFIXES[b as usize % PREFIXES.len()];
                let taken = format!("{p}_{}", b % 5);
                let _ = m.add_net(taken);
            }
            // Nets and cells are separate namespaces, so each gets its
            // own collision set.
            let mut seen_nets = std::collections::HashSet::new();
            let mut seen_cells = std::collections::HashSet::new();
            for (_, net) in m.nets() {
                seen_nets.insert(net.name.to_owned());
            }
            for &b in picks {
                let p = PREFIXES[b as usize % PREFIXES.len()];
                let (name, fresh) = if b % 2 == 0 {
                    let name = m.unique_net_name(p);
                    m.add_net(&name).map_err(|e| format!("net `{name}`: {e}"))?;
                    let fresh = seen_nets.insert(name.clone());
                    (name, fresh)
                } else {
                    let name = m.unique_cell_name(p);
                    m.add_cell(name.clone(), "INVX1", &[])
                        .map_err(|e| format!("cell `{name}`: {e}"))?;
                    let fresh = seen_cells.insert(name.clone());
                    (name, fresh)
                };
                if !fresh {
                    return Err(format!("minted duplicate `{name}`"));
                }
                if !name.starts_with(p) {
                    return Err(format!("`{name}` does not extend prefix `{p}`"));
                }
            }
            Ok(())
        },
    );
}

/// `Symbol` values captured before heavy mutation still resolve to the
/// same bytes afterwards: removal, re-adding, and unique-name minting
/// never invalidate or re-map existing symbols.
#[test]
fn symbols_stay_stable_under_mutation() {
    let mut m = Module::new("t");
    let mut recorded: Vec<(Symbol, String)> = Vec::new();
    for &name in NASTY {
        let id = m.add_net(name).unwrap();
        recorded.push((m.net_sym(id), name.to_owned()));
    }
    let a = m.find_net("clk[0]").unwrap();
    for i in 0..200 {
        let name = m.unique_cell_name("drd_u");
        let id = m
            .add_cell(name, "INVX1", &[("A", Conn::Net(a)), ("Z", Conn::Const0)])
            .unwrap();
        recorded.push((m.cell_sym(id), m.cell(id).name.to_owned()));
        if i % 3 == 0 {
            m.remove_cell(id);
        }
        let nn = m.unique_net_name("drd_n");
        let nid = m.add_net(&nn).unwrap();
        recorded.push((m.net_sym(nid), nn));
    }
    for (sym, name) in &recorded {
        assert_eq!(m.symbols().resolve(*sym), name.as_str());
        assert_eq!(m.symbols().lookup(name), Some(*sym));
    }
}
