//! Parse-error diagnostics: every syntax error carries a byte `offset`
//! into the borrowed input buffer plus the 1-based `line`/`col` derived
//! from it, and the three must agree — `offset` is what tools use to
//! point at the offending token, `line:col` is what humans read in the
//! `Display` rendering. The spans are part of the front end's contract,
//! so they are pinned exactly; a parser change that moves one is a
//! behaviour change and must update this file deliberately.

use drd_netlist::verilog::{parse_design, parse_design_jobs};
use drd_netlist::NetlistError;

/// Asserts `err` is a `Parse` error whose span is internally consistent
/// with `src` (line/col re-derived from the byte offset match the stored
/// values) and whose offset points at `token`, then returns its parts.
fn parse_span(src: &str, err: &NetlistError, token: &str) -> (usize, usize, usize, String) {
    let NetlistError::Parse {
        line,
        col,
        offset,
        message,
    } = err
    else {
        panic!("expected a Parse error, got {err:?}");
    };
    assert!(*offset <= src.len(), "offset {offset} beyond input");
    let upto = &src[..*offset];
    let derived_line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
    let derived_col = upto.chars().rev().take_while(|&c| c != '\n').count() + 1;
    assert_eq!(*line, derived_line, "stored line disagrees with offset");
    assert_eq!(*col, derived_col, "stored col disagrees with offset");
    assert!(
        src[*offset..].starts_with(token),
        "offset points at {:?}, expected {token:?}",
        &src[*offset..src.len().min(*offset + 16)]
    );
    (*line, *col, *offset, message.clone())
}

#[test]
fn bad_constant_base_points_at_the_constant() {
    let src = "module t(z);\n  output z;\n  BUFX1 g (.A(4'q0), .Z(z));\nendmodule\n";
    let err = parse_design(src).expect_err("bad base rejected");
    let (line, col, offset, msg) = parse_span(src, &err, "4'q0");
    assert_eq!((line, col, offset), (3, 15, 39));
    assert_eq!(msg, "unknown constant base `q`");
    assert_eq!(err.to_string(), "parse error at line 3:15: unknown constant base `q`");
}

#[test]
fn oversized_range_points_at_the_bound() {
    let src = "module t(a);\n  input a;\n  wire [99999999:0] huge;\nendmodule\n";
    let err = parse_design(src).expect_err("huge range rejected");
    let (line, col, offset, msg) = parse_span(src, &err, "99999999");
    assert_eq!((line, col, offset), (3, 9, 32));
    assert_eq!(msg, "bit index 99999999 exceeds the supported maximum 65536");
}

#[test]
fn truncated_pin_list_points_at_the_stray_token() {
    let src = "module t(a);\n  input a;\n  BUFX1 g (.A(a), ;\nendmodule\n";
    let err = parse_design(src).expect_err("stray `;` rejected");
    let (line, col, offset, msg) = parse_span(src, &err, ";");
    assert_eq!((line, col, offset), (3, 19, 42));
    assert_eq!(msg, "expected `.`, found `;`");
}

#[test]
fn unterminated_comment_points_at_its_opening() {
    let src = "module t(a);\n  input a;\n  /* never ends\nendmodule\n";
    let err = parse_design(src).expect_err("unterminated comment rejected");
    let (line, col, offset, msg) = parse_span(src, &err, "/*");
    assert_eq!((line, col, offset), (3, 3, 26));
    assert_eq!(msg, "unterminated block comment");
}

#[test]
fn stray_character_points_at_the_byte() {
    let src = "module t(a);\n  input a;\n  always @(posedge a) q <= a;\nendmodule\n";
    let err = parse_design(src).expect_err("behavioural code rejected");
    let (line, col, offset, msg) = parse_span(src, &err, "@");
    assert_eq!((line, col, offset), (3, 10, 33));
    assert_eq!(msg, "unexpected character `@`");
}

#[test]
fn multibyte_text_keeps_columns_in_characters() {
    // The `é` before the error is 2 bytes but 1 column: col counts
    // characters while offset counts bytes, and both must be right.
    let src = "module t(a);\n  input a;\n  // café\n  wire @;\nendmodule\n";
    let err = parse_design(src).expect_err("stray `@` rejected");
    let (line, col, offset, msg) = parse_span(src, &err, "@");
    assert_eq!((line, col), (4, 8));
    assert_eq!(offset, src.find('@').expect("@ present"));
    assert_eq!(msg, "unexpected character `@`");
}

/// The parallel front end must fall back to (or agree with) the serial
/// parse on errors: diagnostics cannot depend on the job count.
#[test]
fn parallel_parse_reports_identical_diagnostics() {
    let sources = [
        "module t(z);\n  output z;\n  BUFX1 g (.A(4'q0), .Z(z));\nendmodule\n",
        "module a(x);\n  input x;\nendmodule\nmodule b(y);\n  input y;\n  wire [99999999:0] w;\nendmodule\n",
        "module t(a);\n  input a;\n  /* never ends\nendmodule\n",
    ];
    for src in sources {
        let serial = parse_design_jobs(src, Some(1)).expect_err("serial parse fails");
        for jobs in [2, 4, 8] {
            let par = parse_design_jobs(src, Some(jobs)).expect_err("parallel parse fails");
            assert_eq!(serial, par, "diagnostic diverged at jobs={jobs}");
        }
    }
}

/// Errors the module *builder* raises (rather than the tokenizer or
/// grammar) still surface through `parse_design` with a line number.
#[test]
fn unsupported_constructs_carry_a_line() {
    let src = "module t(a, z);\n  input a;\n  output z;\n  BUFX1 g (a, z);\nendmodule\n";
    let err = parse_design(src).expect_err("ordered connections rejected");
    let NetlistError::Unsupported { line, ref message } = err else {
        panic!("expected Unsupported, got {err:?}");
    };
    assert_eq!(line, 4);
    assert!(message.contains("ordered"), "message: {message}");
}
