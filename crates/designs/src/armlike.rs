//! An ARM966E-S-class core substitute (§5.3).
//!
//! The paper's second case study is a pre-existing ARM966E-S netlist: a
//! larger scan design, implemented in the Low-Leakage library, and — due
//! to its complexity — desynchronized as a *single group*. This generator
//! produces a core with the same characteristics: a 5-stage pipeline with
//! a multiplier array (making it substantially larger than the DLX), and
//! plain flip-flops that the flow's DFT pass converts into a scan chain
//! (§4.3) before desynchronization.

use drd_netlist::{Conn, Module, NetlistError};

use crate::builder::{Builder, Word};
use crate::dlx::DlxParams;

/// ARM-like generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmParams {
    /// Datapath width.
    pub width: usize,
    /// log2 of the register-file depth.
    pub regs_log2: usize,
    /// log2 of the instruction-ROM depth.
    pub rom_log2: usize,
    /// log2 of the data-RAM depth.
    pub ram_log2: usize,
    /// Multiplier operand width (array multiplier: cells grow as the
    /// square of this).
    pub mul_width: usize,
    /// Program seed.
    pub seed: u64,
}

impl ArmParams {
    /// Full-size configuration (≈ 2–3× the DLX, like the paper's ARM).
    pub fn full() -> Self {
        ArmParams {
            width: 32,
            regs_log2: 5,
            rom_log2: 7,
            ram_log2: 5,
            mul_width: 16,
            seed: 0xA9_66E5,
        }
    }

    /// Small configuration for tests.
    pub fn small() -> Self {
        ArmParams {
            width: 8,
            regs_log2: 3,
            rom_log2: 4,
            ram_log2: 3,
            mul_width: 4,
            seed: 0xA9_66E5,
        }
    }
}

impl Default for ArmParams {
    fn default() -> Self {
        ArmParams::full()
    }
}

/// Array multiplier `a[mw] × b[mw]` → `2·mw` bits of partial-product
/// adders — the block that gives the ARM-like core its extra bulk.
fn multiplier(b: &mut Builder<'_>, a: &Word, x: &Word) -> Result<Word, NetlistError> {
    let mw = a.width();
    // Partial products.
    let mut rows: Vec<Word> = Vec::with_capacity(mw);
    for (i, &xb) in x.bits().iter().enumerate() {
        let mut row_bits = Vec::with_capacity(2 * mw);
        for _ in 0..i {
            // Shifted-in zeros via const ties on fresh gates below.
            row_bits.push(None);
        }
        for &ab in a.bits() {
            row_bits.push(Some((ab, xb)));
        }
        while row_bits.len() < 2 * mw {
            row_bits.push(None);
        }
        let mut nets = Vec::with_capacity(2 * mw);
        for (k, slot) in row_bits.into_iter().enumerate() {
            let net = match slot {
                Some((ab, xb)) => {
                    let z = b.module().add_net_auto(&format!("pp{i}_{k}"));
                    let cell = b.module().unique_cell_name(&format!("u_pp{i}_{k}"));
                    b.module().add_cell(
                        cell,
                        "AND2X1",
                        &[("A", Conn::Net(ab)), ("B", Conn::Net(xb)), ("Z", Conn::Net(z))],
                    )?;
                    z
                }
                None => {
                    let z = b.module().add_net_auto(&format!("ppz{i}_{k}"));
                    let cell = b.module().unique_cell_name(&format!("u_ppz{i}_{k}"));
                    b.module().add_cell(
                        cell,
                        "BUFX1",
                        &[("A", Conn::Const0), ("Z", Conn::Net(z))],
                    )?;
                    z
                }
            };
            nets.push(net);
        }
        rows.push(Word(nets));
    }
    // Adder tree over the rows.
    while rows.len() > 1 {
        let mut next = Vec::with_capacity(rows.len().div_ceil(2));
        let mut iter = rows.into_iter();
        while let Some(r0) = iter.next() {
            match iter.next() {
                Some(r1) => {
                    let (s, _) = b.adder(&r0, &r1, Conn::Const0)?;
                    next.push(s);
                }
                None => next.push(r0),
            }
        }
        rows = next;
    }
    Ok(rows.pop().expect("at least one row"))
}

/// Builds the ARM-like core.
///
/// # Errors
/// Propagates netlist construction errors.
pub fn build(p: &ArmParams) -> Result<Module, NetlistError> {
    // Reuse the DLX skeleton for fetch/decode/regfile/memory…
    let dlx_params = DlxParams {
        width: p.width,
        regs_log2: p.regs_log2,
        rom_log2: p.rom_log2,
        ram_log2: p.ram_log2,
        seed: p.seed,
    };
    let mut m = crate::dlx::build(&dlx_params)?;
    m.name = "armlike".into();

    // …then graft the multiply pipeline: id_a/id_b low bits feed an array
    // multiplier whose result is registered and folded into the RAM write
    // data path through an extra XOR stage.
    {
        let mut b = Builder::new(&mut m);
        let clk = {
            let clk_net = b.module().find_net("clk").expect("dlx has clk");
            clk_net
        };
        let id_a: Vec<_> = (0..p.mul_width)
            .map(|i| b.module().find_net(&format!("id_a[{i}]")).expect("id_a"))
            .collect();
        let id_b: Vec<_> = (0..p.mul_width)
            .map(|i| b.module().find_net(&format!("id_b[{i}]")).expect("id_b"))
            .collect();
        let prod = multiplier(&mut b, &Word(id_a), &Word(id_b))?;
        let mul_r = b.register("mul_r", &prod, clk)?;
        // Fold into an observable accumulator register.
        let acc_fb = b.wire("mul_acc", 2 * p.mul_width)?;
        let folded = b.xor(&mul_r, &acc_fb)?;
        for i in 0..2 * p.mul_width {
            b.module().add_cell(
                format!("mul_acc_r{i}"),
                "DFFX1",
                &[
                    ("D", Conn::Net(folded.0[i])),
                    ("CK", Conn::Net(clk)),
                    ("Q", Conn::Net(acc_fb.0[i])),
                ],
            )?;
        }
        b.output("mul_out", &acc_fb)?;
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::{vlib90, Lv};
    use drd_netlist::Design;
    use drd_sim::{SimOptions, Simulator};

    #[test]
    fn armlike_is_larger_than_dlx() {
        let arm = build(&ArmParams::small()).unwrap();
        let dlx = crate::dlx::build(&DlxParams::small()).unwrap();
        assert!(arm.cell_count() > dlx.cell_count() + 50, "arm {} vs dlx {}", arm.cell_count(), dlx.cell_count());
    }

    #[test]
    fn multiplier_multiplies() {
        let mut m = Module::new("t");
        {
            let mut b = Builder::new(&mut m);
            let a = b.input("a", 4).unwrap();
            let x = b.input("x", 4).unwrap();
            let prod = multiplier(&mut b, &a, &x).unwrap();
            b.output("p", &prod).unwrap();
        }
        let mut d = Design::new();
        d.insert(m);
        let mut sim = Simulator::new(&d, &vlib90::low_leakage(), SimOptions::default()).unwrap();
        for (a, x) in [(3u64, 5u64), (15, 15), (0, 9), (7, 8)] {
            for i in 0..4 {
                sim.poke(&format!("a[{i}]"), Lv::from_bool((a >> i) & 1 == 1))
                    .unwrap();
                sim.poke(&format!("x[{i}]"), Lv::from_bool((x >> i) & 1 == 1))
                    .unwrap();
            }
            sim.run_for(20.0);
            let mut got = 0u64;
            for i in 0..8 {
                if sim.peek(&format!("p[{i}]")).unwrap() == Lv::One {
                    got |= 1 << i;
                }
            }
            assert_eq!(got, a * x, "{a}×{x}");
        }
    }

    #[test]
    fn armlike_runs_under_clock() {
        let m = build(&ArmParams::small()).unwrap();
        let mut d = Design::new();
        d.insert(m);
        let mut sim = Simulator::new(&d, &vlib90::low_leakage(), SimOptions::default()).unwrap();
        sim.poke("irq", Lv::Zero).unwrap();
        sim.schedule_clock("clk", 8.0, 4.0, 12).unwrap();
        sim.run_for(105.0);
        assert_eq!(sim.captures().capture_count("mul_r_r0"), 12);
    }
}
