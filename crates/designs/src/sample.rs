//! The worked example of Chapter 2: the 5-region circuit of Fig. 2.2.
//!
//! Five register groups `G1..G5` with combinational clouds `CL1..CL5`,
//! wired so the data-dependency graph matches Fig. 2.6:
//!
//! ```text
//! G1 → G2 → G4      G1 → G3 → G5      G3 → G4      G5 → G5 (self loop
//! G4 → G2 (feedback as drawn by the crossing arrows of Fig. 2.6)
//! ```

use drd_netlist::{Conn, Module, NetlistError};

use crate::builder::Builder;

/// Bit width of each register group.
pub const WIDTH: usize = 4;

/// Builds the Fig. 2.2 sample circuit.
///
/// # Errors
/// Propagates netlist construction errors (cannot happen for the fixed
/// structure unless names collide, which they do not).
pub fn figure_2_2() -> Result<Module, NetlistError> {
    let mut m = Module::new("fig2_2");
    let mut b = Builder::new(&mut m);
    let clk = b.input("clk", 1)?;
    let clk = clk.0[0];
    let din = b.input("din", WIDTH)?;

    // G1 registers the primary inputs (cloud CL1 = thin input logic).
    let cl1 = b.not(&din)?;
    let g1 = b.register("g1", &cl1, clk)?;

    // Forward declarations for feedback (G4 → CL2).
    let g4_fb = b.wire("g4", WIDTH)?;

    // CL2 reads G1 and G4; G2 registers it.
    let cl2 = b.xor(&g1, &g4_fb)?;
    let g2 = b.register("g2", &cl2, clk)?;

    // CL3 reads G1; G3 registers it.
    let cl3_a = b.not(&g1)?;
    let cl3 = b.and(&cl3_a, &g1)?; // a & !a = 0 would be constant; mix instead
    let cl3 = b.or(&cl3, &g1)?;
    let g3 = b.register("g3", &cl3, clk)?;

    // CL4 reads G2 and G3; G4 registers it (driving the feedback wire).
    let cl4 = b.and(&g2, &g3)?;
    let cl4b = b.not(&cl4)?;
    for i in 0..WIDTH {
        let cell = format!("g4_r{i}");
        b.module().add_cell(
            cell,
            "DFFX1",
            &[
                ("D", Conn::Net(cl4b.0[i])),
                ("CK", Conn::Net(clk)),
                ("Q", Conn::Net(g4_fb.0[i])),
            ],
        )?;
    }

    // CL5 reads G3 and G5 itself (accumulator); G5 registers it.
    let g5_fb = b.wire("g5", WIDTH)?;
    let cl5 = b.xor(&g3, &g5_fb)?;
    for i in 0..WIDTH {
        let cell = format!("g5_r{i}");
        b.module().add_cell(
            cell,
            "DFFX1",
            &[
                ("D", Conn::Net(cl5.0[i])),
                ("CK", Conn::Net(clk)),
                ("Q", Conn::Net(g5_fb.0[i])),
            ],
        )?;
    }

    b.output("dout2", &g2)?;
    b.output("dout5", &g5_fb)?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_core::region::{group, GroupingOptions};
    use drd_liberty::vlib90;

    #[test]
    fn sample_groups_into_five_regions() {
        let m = figure_2_2().unwrap();
        let lib = vlib90::high_speed();
        let regions = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        // G1 registers inputs through CL1 (a cloud), so no g0 appears:
        // exactly five groups carry registers. (Output-port buffer clouds
        // form extra register-less regions, which get no controllers.)
        let controlled: Vec<_> = regions
            .regions
            .iter()
            .filter(|r| !r.seq_cells.is_empty())
            .collect();
        assert_eq!(
            controlled.len(),
            5,
            "{:?}",
            regions
                .regions
                .iter()
                .map(|r| (&r.name, r.cells.len(), r.seq_cells.len()))
                .collect::<Vec<_>>()
        );
        for r in &controlled {
            assert_eq!(r.seq_cells.len(), WIDTH, "{}", r.name);
        }
    }

    #[test]
    fn sample_ddg_matches_figure_2_6_shape() {
        let m = figure_2_2().unwrap();
        let lib = vlib90::high_speed();
        let regions = group(&m, &lib, &GroupingOptions::recommended()).unwrap();
        let ddg = drd_core::ddg::build(&m, &lib, &regions).unwrap();
        let idx = |cell: &str| regions.region_of(cell).unwrap();
        let (g1, g2, g3, g4, g5) = (
            idx("g1_r0"),
            idx("g2_r0"),
            idx("g3_r0"),
            idx("g4_r0"),
            idx("g5_r0"),
        );
        for edge in [(g1, g2), (g1, g3), (g2, g4), (g3, g4), (g3, g5), (g4, g2), (g5, g5)] {
            assert!(ddg.edges.contains(&edge), "missing edge {edge:?}");
        }
    }
}
