//! A DLX-style RISC pipeline, generated at gate level (§5.2).
//!
//! Matches the published design's structural character: a 4-stage pipeline
//! (IF, ID, EX, MEM/WB) with no data forwarding, a register file read in
//! ID and written back in MEM/WB (creating the feedback dependency the
//! controller network must honour), and — so the design is fully
//! self-contained for flow-equivalence simulation — an embedded
//! combinational instruction ROM and a small data RAM in place of the
//! paper's external memories (see DESIGN.md's substitution table).
//!
//! The instruction stream is a deterministic pseudo-random program; the
//! PC wraps around the ROM, so the circuit computes forever without any
//! input stimulus.

use drd_netlist::{Conn, Module, NetlistError};

use crate::builder::{Builder, Word};

/// DLX generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlxParams {
    /// Datapath width in bits.
    pub width: usize,
    /// log2 of the register-file depth.
    pub regs_log2: usize,
    /// log2 of the instruction-ROM depth.
    pub rom_log2: usize,
    /// log2 of the data-RAM depth.
    pub ram_log2: usize,
    /// Seed for the generated program.
    pub seed: u64,
}

impl DlxParams {
    /// Full-size configuration (≈ the paper's 32-bit DLX scale).
    pub fn full() -> Self {
        DlxParams {
            width: 32,
            regs_log2: 5,
            rom_log2: 7,
            ram_log2: 4,
            seed: 0xD1_5C0DE,
        }
    }

    /// Small configuration for fast tests.
    pub fn small() -> Self {
        DlxParams {
            width: 8,
            regs_log2: 3,
            rom_log2: 4,
            ram_log2: 3,
            seed: 0xD1_5C0DE,
        }
    }
}

impl Default for DlxParams {
    fn default() -> Self {
        DlxParams::full()
    }
}

/// Instruction encoding (LSB-first fields):
/// `[aluop:3][use_imm:1][is_load:1][is_store:1][wb_en:1][rs][rt][rd][imm…]`.
fn field_widths(p: &DlxParams) -> (usize, usize) {
    let fixed = 7 + 3 * p.regs_log2;
    let imm = p.width.saturating_sub(fixed).max(4);
    (fixed, imm)
}

/// Generates the deterministic pseudo-random program.
fn program(p: &DlxParams) -> Vec<u64> {
    let (fixed, imm_w) = field_widths(p);
    let total_bits = fixed + imm_w;
    let mut state = p.seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };
    (0..1usize << p.rom_log2)
        .map(|_| {
            let raw = next();
            raw & ((1u64 << total_bits.min(63)) - 1)
        })
        .collect()
}

/// Builds the DLX gate-level module.
///
/// # Errors
/// Propagates netlist construction errors.
pub fn build(p: &DlxParams) -> Result<Module, NetlistError> {
    let mut m = Module::new("dlx");
    let mut b = Builder::new(&mut m);
    let w = p.width;
    let rl = p.regs_log2;
    let (_, imm_w) = field_widths(p);

    let clk = b.input("clk", 1)?.0[0];
    // A registered external "interrupt" input gives the design a Group-0
    // input register, as in the paper's flow.
    let irq = b.input("irq", 1)?;

    // ------------------------------------------------------------------ IF
    let pc_next = b.wire("pc_next", p.rom_log2)?;
    let pc = b.register("pc", &pc_next, clk)?;
    let one = {
        // pc + 1 with carry-in 1 against zero.
        let zero_bits: Vec<Conn> = vec![Conn::Const0; p.rom_log2];
        let _ = zero_bits;
        let zeros = b.wire("pc_zero", p.rom_log2)?;
        for (i, &z) in zeros.bits().iter().enumerate() {
            b.module().add_cell(
                format!("pc_zero_tie{i}"),
                "BUFX1",
                &[("A", Conn::Const0), ("Z", Conn::Net(z))],
            )?;
        }
        zeros
    };
    let (pc_inc, _) = b.adder(&pc, &one, Conn::Const1)?;
    for i in 0..p.rom_log2 {
        b.module().add_cell(
            format!("pc_nx{i}"),
            "BUFX1",
            &[("A", Conn::Net(pc_inc.0[i])), ("Z", Conn::Net(pc_next.0[i]))],
        )?;
    }
    let instr = b.rom(&pc, &program(p), 7 + 3 * rl + imm_w)?;
    let if_instr = b.register("if_instr", &instr, clk)?;
    let irq_r = b.register("irq_r", &irq, clk)?;
    let _ = irq_r;

    // ------------------------------------------------------------------ ID
    let bits = if_instr.bits();
    let aluop = Word(bits[0..3].to_vec());
    let use_imm = bits[3];
    let is_load = bits[4];
    let is_store = bits[5];
    let wb_en = bits[6];
    let rs = Word(bits[7..7 + rl].to_vec());
    let rt = Word(bits[7 + rl..7 + 2 * rl].to_vec());
    let rd = Word(bits[7 + 2 * rl..7 + 3 * rl].to_vec());
    let imm = Word(bits[7 + 3 * rl..7 + 3 * rl + imm_w].to_vec());

    // Register file with write-back from MEM/WB (feedback wires declared
    // now, driven below).
    let wb_value = b.wire("wb_value", w)?;
    let wb_rd = b.wire("wb_rd", rl)?;
    let wb_we = b.wire("wb_we", 1)?.0[0];
    let wdec = b.decoder(&wb_rd, wb_we)?;
    let mut reg_qs: Vec<Word> = Vec::with_capacity(1 << rl);
    for r in 0..1usize << rl {
        let q = b.register_en(&format!("rf{r}"), &wb_value, wdec.0[r], clk)?;
        reg_qs.push(q);
    }
    let a_val = b.mux_tree(&rs, &reg_qs)?;
    let b_val = b.mux_tree(&rt, &reg_qs)?;

    // Zero-extend the immediate to the datapath width.
    let imm_ext = {
        let ext = b.wire("imm_ext", w)?;
        for i in 0..w {
            if i < imm_w {
                b.module().add_cell(
                    format!("immb{i}"),
                    "BUFX1",
                    &[("A", Conn::Net(imm.0[i])), ("Z", Conn::Net(ext.0[i]))],
                )?;
            } else {
                b.module().add_cell(
                    format!("immb{i}"),
                    "BUFX1",
                    &[("A", Conn::Const0), ("Z", Conn::Net(ext.0[i]))],
                )?;
            }
        }
        ext
    };

    let id_a = b.register("id_a", &a_val, clk)?;
    let id_b = b.register("id_b", &b_val, clk)?;
    let id_imm = b.register("id_imm", &imm_ext, clk)?;
    let id_alu = b.register("id_alu", &aluop, clk)?;
    let id_ctl = b.register(
        "id_ctl",
        &Word(vec![use_imm, is_load, is_store, wb_en]),
        clk,
    )?;
    let id_rd = b.register("id_rd", &rd, clk)?;

    // ------------------------------------------------------------------ EX
    let operand_b = b.mux(id_ctl.0[0], &id_b, &id_imm)?;
    let sum = b.carry_select_adder(&id_a, &operand_b, 8.max(w / 4))?;
    let diff = b.subtractor(&id_a, &operand_b)?;
    let and_r = b.and(&id_a, &operand_b)?;
    let or_r = b.or(&id_a, &operand_b)?;
    let xor_r = b.xor(&id_a, &operand_b)?;
    let not_a = b.not(&id_a)?;
    let alu_out = b.mux_tree(
        &id_alu,
        &[
            sum,
            diff,
            and_r,
            or_r,
            xor_r,
            not_a,
            id_a.clone(),
            operand_b.clone(),
        ],
    )?;
    let ex_out = b.register("ex_out", &alu_out, clk)?;
    let ex_st = b.register("ex_st", &id_b, clk)?;
    let ex_ctl = b.register("ex_ctl", &id_ctl, clk)?;
    let ex_rd = b.register("ex_rd", &id_rd, clk)?;

    // -------------------------------------------------------------- MEM/WB
    let addr = Word(ex_out.0[0..p.ram_log2].to_vec());
    let mdec = b.decoder(&addr, ex_ctl.0[2])?; // write strobes on is_store
    let mut ram_qs: Vec<Word> = Vec::with_capacity(1 << p.ram_log2);
    for a in 0..1usize << p.ram_log2 {
        let q = b.register_en(&format!("dm{a}"), &ex_st, mdec.0[a], clk)?;
        ram_qs.push(q);
    }
    let mem_out = b.mux_tree(&addr, &ram_qs)?;
    let wb_mux = b.mux(ex_ctl.0[1], &ex_out, &mem_out)?;
    // Drive the write-back feedback wires.
    for i in 0..w {
        b.module().add_cell(
            format!("wbv{i}"),
            "BUFX1",
            &[("A", Conn::Net(wb_mux.0[i])), ("Z", Conn::Net(wb_value.0[i]))],
        )?;
    }
    for i in 0..rl {
        b.module().add_cell(
            format!("wbr{i}"),
            "BUFX1",
            &[("A", Conn::Net(ex_rd.0[i])), ("Z", Conn::Net(wb_rd.0[i]))],
        )?;
    }
    b.module().add_cell(
        "wbe",
        "BUFX1",
        &[("A", Conn::Net(ex_ctl.0[3])), ("Z", Conn::Net(wb_we))],
    )?;

    // Observable outputs.
    b.output("result", &ex_out)?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::{vlib90, Lv};
    use drd_netlist::Design;
    use drd_sim::{SimOptions, Simulator};

    #[test]
    fn program_is_deterministic() {
        let p = DlxParams::small();
        assert_eq!(program(&p), program(&p));
        let other = DlxParams {
            seed: 99,
            ..DlxParams::small()
        };
        assert_ne!(program(&p), program(&other));
    }

    #[test]
    fn small_dlx_builds_and_runs() {
        let p = DlxParams::small();
        let m = build(&p).unwrap();
        assert!(m.cell_count() > 400, "{} cells", m.cell_count());
        let mut d = Design::new();
        d.insert(m);
        let mut sim = Simulator::new(&d, &vlib90::high_speed(), SimOptions::default()).unwrap();
        sim.poke("irq", Lv::Zero).unwrap();
        sim.schedule_clock("clk", 4.0, 2.0, 30).unwrap();
        sim.run_for(130.0);
        // The PC advanced (captures on every cycle) and datapath activity
        // reached the result register.
        assert_eq!(sim.captures().capture_count("pc_r0"), 30);
        let result_activity: u64 = (0..8)
            .map(|i| sim.toggle_count(&format!("ex_out[{i}]")).unwrap())
            .sum();
        assert!(result_activity > 0, "ALU produced activity");
    }

    #[test]
    fn full_dlx_has_paper_scale() {
        let m = build(&DlxParams::full()).unwrap();
        let counts = drd_netlist::stats::counts(&m);
        assert!(
            counts.cells > 8_000,
            "full DLX is netlist-scale: {} cells",
            counts.cells
        );
        let lib = vlib90::high_speed();
        let seq = m
            .cells()
            .filter(|(_, c)| lib.is_sequential(c.kind_ref()))
            .count();
        assert!(seq > 1_500, "{seq} flip-flops");
    }

    #[test]
    fn dlx_regions_reflect_pipeline_structure() {
        let p = DlxParams::small();
        let mut m = build(&p).unwrap();
        let lib = vlib90::high_speed();
        drd_core::region::clean_for_grouping(&mut m, &lib);
        let regions =
            drd_core::region::group(&m, &lib, &drd_core::region::GroupingOptions::recommended())
                .unwrap();
        // The pipeline yields a handful of stage-like regions (the paper's
        // automatic grouping matched its 4 pipeline stages; our finer
        // microarchitecture yields a few more).
        let controlled = regions
            .regions
            .iter()
            .filter(|r| !r.seq_cells.is_empty())
            .count();
        assert!((4..=12).contains(&controlled), "controlled: {controlled}");
        assert!(
            (4..=14).contains(&regions.len()),
            "regions: {:?}",
            regions
                .regions
                .iter()
                .map(|r| (&r.name, r.cells.len(), r.seq_cells.len()))
                .collect::<Vec<_>>()
        );
    }
}
