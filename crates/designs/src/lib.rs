//! # drd-designs — the paper's case-study designs, generated at gate level
//!
//! The paper evaluates desynchronization on two processors implemented
//! from RTL through Synopsys synthesis: a 4-stage DLX RISC CPU (§5.2) and
//! the ARM966E-S (§5.3). Neither the RTL nor the synthesis tool is
//! available, so this crate *generates technology-mapped netlists
//! directly*: a word-level [`builder`] DSL (adders, muxes, register files,
//! ROMs) lowers to `vlib90` gates, producing flat gate-level modules of
//! the same structural character the desynchronizer consumed in the paper
//! (buses, pipeline registers, register-file feedback, scan chains).
//!
//! * [`dlx`] — a parameterizable 4/5-region DLX-style pipeline with an
//!   embedded instruction ROM and data RAM so it is fully self-contained
//!   (required for the flow-equivalence comparisons).
//! * [`armlike`] — a larger scan-friendly RISC core with a multiplier
//!   array, desynchronized as a single group as the paper's ARM was.
//! * [`sample`] — the small 5-region circuit of Fig. 2.2, used as the
//!   worked example throughout Chapter 2.
//!
//! All generators are deterministic: the same parameters produce the same
//! netlist.

pub mod armlike;
pub mod builder;
pub mod dlx;
pub mod sample;

pub use builder::{Builder, Word};
