//! Word-level netlist construction DSL, lowered to `vlib90` gates.
//!
//! This plays the role of the logic-synthesis/technology-mapping step of
//! the paper's flow (§4.2): designs are described in word-level operations
//! and emitted directly as mapped gate-level netlists with `bus[i]` net
//! naming, so the desynchronizer's bus heuristics see realistic input.

use drd_netlist::{Conn, Module, NetId, NetlistError, PortDir};

/// A bus of nets, least-significant bit first.
#[derive(Debug, Clone)]
pub struct Word(pub Vec<NetId>);

impl Word {
    /// Bus width.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The bit nets, LSB first.
    pub fn bits(&self) -> &[NetId] {
        &self.0
    }

    /// A single-bit word from one net.
    pub fn bit(net: NetId) -> Word {
        Word(vec![net])
    }
}

/// Gate-level builder over a [`Module`].
#[derive(Debug)]
pub struct Builder<'m> {
    module: &'m mut Module,
    counter: usize,
}

impl<'m> Builder<'m> {
    /// Wraps a module for building.
    pub fn new(module: &'m mut Module) -> Self {
        let counter = module.cell_count() + module.net_count();
        Builder { module, counter }
    }

    /// The underlying module.
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    fn fresh(&mut self, tag: &str) -> String {
        self.counter += 1;
        format!("{tag}_{}", self.counter)
    }

    fn unique_cell(&mut self, tag: &str) -> String {
        let candidate = self.fresh(tag);
        self.module.unique_cell_name(&candidate)
    }

    /// Declares an input bus `name[width-1:0]`.
    ///
    /// # Errors
    /// Propagates name collisions.
    pub fn input(&mut self, name: &str, width: usize) -> Result<Word, NetlistError> {
        let mut bits = Vec::with_capacity(width);
        for i in 0..width {
            let port_name = if width == 1 {
                name.to_owned()
            } else {
                format!("{name}[{i}]")
            };
            let p = self.module.add_port(port_name, PortDir::Input)?;
            bits.push(self.module.port(p).net);
        }
        Ok(Word(bits))
    }

    /// Declares an output bus and drives it from `word` via buffers.
    ///
    /// # Errors
    /// Propagates name collisions.
    pub fn output(&mut self, name: &str, word: &Word) -> Result<(), NetlistError> {
        for (i, &bit) in word.bits().iter().enumerate() {
            let port_name = if word.width() == 1 {
                name.to_owned()
            } else {
                format!("{name}[{i}]")
            };
            let p = self.module.add_port(port_name, PortDir::Output)?;
            let net = self.module.port(p).net;
            let cell = self.unique_cell(&format!("ob_{name}_{i}"));
            self.module.add_cell(
                cell,
                "BUFX1",
                &[("A", Conn::Net(bit)), ("Z", Conn::Net(net))],
            )?;
        }
        Ok(())
    }

    /// Declares an internal bus `name[width-1:0]`.
    ///
    /// # Errors
    /// Propagates name collisions.
    pub fn wire(&mut self, name: &str, width: usize) -> Result<Word, NetlistError> {
        let mut bits = Vec::with_capacity(width);
        for i in 0..width {
            let net_name = if width == 1 {
                name.to_owned()
            } else {
                format!("{name}[{i}]")
            };
            bits.push(self.module.add_net(net_name)?);
        }
        Ok(Word(bits))
    }

    fn gate2(&mut self, kind: &str, tag: &str, a: NetId, b: NetId) -> Result<NetId, NetlistError> {
        let z_name = self.fresh(&format!("n_{tag}"));
        let z = self.module.add_net_auto(&z_name);
        let cell = self.unique_cell(&format!("u_{tag}"));
        self.module.add_cell(
            cell,
            kind,
            &[("A", Conn::Net(a)), ("B", Conn::Net(b)), ("Z", Conn::Net(z))],
        )?;
        Ok(z)
    }

    fn gate1(&mut self, kind: &str, tag: &str, a: NetId) -> Result<NetId, NetlistError> {
        let z_name = self.fresh(&format!("n_{tag}"));
        let z = self.module.add_net_auto(&z_name);
        let cell = self.unique_cell(&format!("u_{tag}"));
        self.module
            .add_cell(cell, kind, &[("A", Conn::Net(a)), ("Z", Conn::Net(z))])?;
        Ok(z)
    }

    fn bitwise(
        &mut self,
        kind: &str,
        tag: &str,
        a: &Word,
        b: &Word,
    ) -> Result<Word, NetlistError> {
        assert_eq!(a.width(), b.width(), "width mismatch in {tag}");
        let mut out = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            out.push(self.gate2(kind, tag, a.0[i], b.0[i])?);
        }
        Ok(Word(out))
    }

    /// Bitwise AND.
    ///
    /// # Errors
    /// Propagates netlist errors.
    /// # Panics
    /// Panics on width mismatch.
    pub fn and(&mut self, a: &Word, b: &Word) -> Result<Word, NetlistError> {
        self.bitwise("AND2X1", "and", a, b)
    }

    /// Bitwise OR.
    ///
    /// # Errors
    /// Propagates netlist errors.
    /// # Panics
    /// Panics on width mismatch.
    pub fn or(&mut self, a: &Word, b: &Word) -> Result<Word, NetlistError> {
        self.bitwise("OR2X1", "or", a, b)
    }

    /// Bitwise XOR.
    ///
    /// # Errors
    /// Propagates netlist errors.
    /// # Panics
    /// Panics on width mismatch.
    pub fn xor(&mut self, a: &Word, b: &Word) -> Result<Word, NetlistError> {
        self.bitwise("XOR2X1", "xor", a, b)
    }

    /// Bitwise NOT.
    ///
    /// # Errors
    /// Propagates netlist errors.
    pub fn not(&mut self, a: &Word) -> Result<Word, NetlistError> {
        let mut out = Vec::with_capacity(a.width());
        for &bit in a.bits() {
            out.push(self.gate1("INVX1", "not", bit)?);
        }
        Ok(Word(out))
    }

    /// 2:1 word multiplexer: `sel ? b : a`.
    ///
    /// # Errors
    /// Propagates netlist errors.
    /// # Panics
    /// Panics on width mismatch.
    pub fn mux(&mut self, sel: NetId, a: &Word, b: &Word) -> Result<Word, NetlistError> {
        assert_eq!(a.width(), b.width(), "width mismatch in mux");
        let mut out = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            let z_name = self.fresh("n_mux");
            let z = self.module.add_net_auto(&z_name);
            let cell = self.unique_cell("u_mux");
            self.module.add_cell(
                cell,
                "MUX2X1",
                &[
                    ("A", Conn::Net(a.0[i])),
                    ("B", Conn::Net(b.0[i])),
                    ("S", Conn::Net(sel)),
                    ("Z", Conn::Net(z)),
                ],
            )?;
            out.push(z);
        }
        Ok(Word(out))
    }

    /// N:1 word multiplexer over `sel` bits (LSB first); `options.len()`
    /// must be `2^sel.len()`.
    ///
    /// # Errors
    /// Propagates netlist errors.
    /// # Panics
    /// Panics if the option count does not match the select width.
    pub fn mux_tree(&mut self, sel: &Word, options: &[Word]) -> Result<Word, NetlistError> {
        assert_eq!(
            options.len(),
            1usize << sel.width(),
            "mux tree needs 2^sel options"
        );
        let mut level: Vec<Word> = options.to_vec();
        for &s in sel.bits() {
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                next.push(self.mux(s, &pair[0], &pair[1])?);
            }
            level = next;
        }
        Ok(level.pop().expect("non-empty mux tree"))
    }

    /// Ripple-carry adder (returns sum and carry-out).
    ///
    /// # Errors
    /// Propagates netlist errors.
    /// # Panics
    /// Panics on width mismatch.
    pub fn adder(&mut self, a: &Word, b: &Word, cin: Conn) -> Result<(Word, NetId), NetlistError> {
        assert_eq!(a.width(), b.width(), "width mismatch in adder");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            let s_name = self.fresh("n_s");
            let s = self.module.add_net_auto(&s_name);
            let co_name = self.fresh("n_co");
            let co = self.module.add_net_auto(&co_name);
            let cell = self.unique_cell("u_fa");
            self.module.add_cell(
                cell,
                "ADDF",
                &[
                    ("A", Conn::Net(a.0[i])),
                    ("B", Conn::Net(b.0[i])),
                    ("CI", carry),
                    ("S", Conn::Net(s)),
                    ("CO", Conn::Net(co)),
                ],
            )?;
            sum.push(s);
            carry = Conn::Net(co);
        }
        let cout = match carry {
            Conn::Net(n) => n,
            _ => unreachable!("loop ran at least once for non-empty words"),
        };
        Ok((Word(sum), cout))
    }

    /// Carry-select adder: blocks of `block` bits computed for both carry
    /// values and selected — a shorter critical path, as a synthesis tool
    /// would produce for the DLX's ALU.
    ///
    /// # Errors
    /// Propagates netlist errors.
    /// # Panics
    /// Panics on width mismatch or `block == 0`.
    pub fn carry_select_adder(
        &mut self,
        a: &Word,
        b: &Word,
        block: usize,
    ) -> Result<Word, NetlistError> {
        assert!(block > 0, "block size must be positive");
        assert_eq!(a.width(), b.width(), "width mismatch in adder");
        let mut sum: Vec<NetId> = Vec::with_capacity(a.width());
        let mut carry: Option<NetId> = None; // None = constant 0
        let mut base = 0;
        while base < a.width() {
            let hi = (base + block).min(a.width());
            let aw = Word(a.0[base..hi].to_vec());
            let bw = Word(b.0[base..hi].to_vec());
            if base == 0 {
                let (s, c) = self.adder(&aw, &bw, Conn::Const0)?;
                sum.extend(s.0);
                carry = Some(c);
            } else {
                let (s0, c0) = self.adder(&aw, &bw, Conn::Const0)?;
                let (s1, c1) = self.adder(&aw, &bw, Conn::Const1)?;
                let cin = carry.expect("set after first block");
                let sel = self.mux(cin, &s0, &s1)?;
                sum.extend(sel.0);
                let c_next = self.mux(cin, &Word::bit(c0), &Word::bit(c1))?;
                carry = Some(c_next.0[0]);
            }
            base = hi;
        }
        Ok(Word(sum))
    }

    /// Two's-complement subtractor `a - b` (ripple borrow via `a + !b + 1`).
    ///
    /// # Errors
    /// Propagates netlist errors.
    /// # Panics
    /// Panics on width mismatch.
    pub fn subtractor(&mut self, a: &Word, b: &Word) -> Result<Word, NetlistError> {
        let nb = self.not(b)?;
        let (diff, _) = self.adder(a, &nb, Conn::Const1)?;
        Ok(diff)
    }

    /// Reduction OR of all bits.
    ///
    /// # Errors
    /// Propagates netlist errors.
    pub fn reduce_or(&mut self, a: &Word) -> Result<NetId, NetlistError> {
        let mut acc = a.0[0];
        for &bit in &a.0[1..] {
            acc = self.gate2("OR2X1", "ror", acc, bit)?;
        }
        Ok(acc)
    }

    /// Equality comparator: 1 when `a == b`.
    ///
    /// # Errors
    /// Propagates netlist errors.
    /// # Panics
    /// Panics on width mismatch.
    pub fn equal(&mut self, a: &Word, b: &Word) -> Result<NetId, NetlistError> {
        let x = self.xor(a, b)?;
        let any = self.reduce_or(&x)?;
        self.gate1("INVX1", "eq", any)
    }

    /// A register bank: one flip-flop per bit, `q` nets named
    /// `name[i]`.
    ///
    /// # Errors
    /// Propagates netlist errors.
    pub fn register(
        &mut self,
        name: &str,
        d: &Word,
        clk: NetId,
    ) -> Result<Word, NetlistError> {
        let q = self.wire(name, d.width())?;
        for i in 0..d.width() {
            let cell = format!("{name}_r{i}");
            self.module.add_cell(
                cell,
                "DFFX1",
                &[
                    ("D", Conn::Net(d.0[i])),
                    ("CK", Conn::Net(clk)),
                    ("Q", Conn::Net(q.0[i])),
                ],
            )?;
        }
        Ok(q)
    }

    /// A register with write-enable implemented by recirculation muxes
    /// (`D = we ? d : Q`), keeping plain flip-flops.
    ///
    /// # Errors
    /// Propagates netlist errors.
    pub fn register_en(
        &mut self,
        name: &str,
        d: &Word,
        we: NetId,
        clk: NetId,
    ) -> Result<Word, NetlistError> {
        let q = self.wire(name, d.width())?;
        let recirc = self.mux(we, &q, d)?;
        for i in 0..d.width() {
            let cell = format!("{name}_r{i}");
            self.module.add_cell(
                cell,
                "DFFX1",
                &[
                    ("D", Conn::Net(recirc.0[i])),
                    ("CK", Conn::Net(clk)),
                    ("Q", Conn::Net(q.0[i])),
                ],
            )?;
        }
        Ok(q)
    }

    /// A combinational ROM: `data[i] = table[addr]` built as a mux tree
    /// over constant words (the embedded instruction memory of the DLX).
    ///
    /// # Errors
    /// Propagates netlist errors.
    /// # Panics
    /// Panics if `table.len()` is not `2^addr.width()`.
    pub fn rom(&mut self, addr: &Word, table: &[u64], width: usize) -> Result<Word, NetlistError> {
        assert_eq!(table.len(), 1usize << addr.width(), "rom size");
        // Constant words become Conn::Const at the mux leaves; express
        // them through per-bit mux trees collapsing constants.
        let mut bits = Vec::with_capacity(width);
        for bit in 0..width {
            let leaves: Vec<bool> = table.iter().map(|&w| (w >> bit) & 1 == 1).collect();
            bits.push(self.const_mux_tree(addr, &leaves)?);
        }
        Ok(Word(bits))
    }

    /// Mux tree over constant leaves, with constant folding.
    fn const_mux_tree(&mut self, addr: &Word, leaves: &[bool]) -> Result<NetId, NetlistError> {
        #[derive(Clone, Copy)]
        enum V {
            Const(bool),
            Net(NetId),
        }
        let mut level: Vec<V> = leaves.iter().map(|&b| V::Const(b)).collect();
        for &s in addr.bits() {
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                let v = match (pair[0], pair[1]) {
                    (V::Const(a), V::Const(b)) if a == b => V::Const(a),
                    (V::Const(false), V::Const(true)) => V::Net(self.gate1("BUFX1", "romb", s)?),
                    (V::Const(true), V::Const(false)) => V::Net(self.gate1("INVX1", "romi", s)?),
                    (a, b) => {
                        let conn = |v: V| match v {
                            V::Const(false) => Conn::Const0,
                            V::Const(true) => Conn::Const1,
                            V::Net(n) => Conn::Net(n),
                        };
                        let z_name = self.fresh("n_rom");
                        let z = self.module.add_net_auto(&z_name);
                        let cell = self.unique_cell("u_rom");
                        self.module.add_cell(
                            cell,
                            "MUX2X1",
                            &[("A", conn(a)), ("B", conn(b)), ("S", Conn::Net(s)), ("Z", Conn::Net(z))],
                        )?;
                        V::Net(z)
                    }
                };
                next.push(v);
            }
            level = next;
        }
        match level[0] {
            V::Net(n) => Ok(n),
            V::Const(b) => {
                // Degenerate all-constant column: tie through a buffer.
                let z_name = self.fresh("n_romc");
                let z = self.module.add_net_auto(&z_name);
                let cell = self.unique_cell("u_romc");
                self.module.add_cell(
                    cell,
                    "BUFX1",
                    &[("A", if b { Conn::Const1 } else { Conn::Const0 }), ("Z", Conn::Net(z))],
                )?;
                Ok(z)
            }
        }
    }

    /// Binary decoder: `out[k] = (sel == k) & en`.
    ///
    /// # Errors
    /// Propagates netlist errors.
    pub fn decoder(&mut self, sel: &Word, en: NetId) -> Result<Word, NetlistError> {
        let n = 1usize << sel.width();
        // Complemented selects.
        let nsel = self.not(sel)?;
        let mut outs = Vec::with_capacity(n);
        for k in 0..n {
            let mut acc = en;
            for b in 0..sel.width() {
                let lit = if (k >> b) & 1 == 1 { sel.0[b] } else { nsel.0[b] };
                acc = self.gate2("AND2X1", "dec", acc, lit)?;
            }
            outs.push(acc);
        }
        Ok(Word(outs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drd_liberty::{vlib90, Lv};
    use drd_netlist::Design;
    use drd_sim::{SimOptions, Simulator};

    fn simulate(module: Module) -> Simulator {
        let mut d = Design::new();
        d.insert(module);
        Simulator::new(&d, &vlib90::high_speed(), SimOptions::default()).unwrap()
    }

    fn poke_word(sim: &mut Simulator, name: &str, width: usize, value: u64) {
        for i in 0..width {
            let net = if width == 1 {
                name.to_owned()
            } else {
                format!("{name}[{i}]")
            };
            sim.poke(&net, Lv::from_bool((value >> i) & 1 == 1)).unwrap();
        }
    }

    fn peek_word(sim: &Simulator, name: &str, width: usize) -> u64 {
        let mut v = 0u64;
        for i in 0..width {
            let net = if width == 1 {
                name.to_owned()
            } else {
                format!("{name}[{i}]")
            };
            if sim.peek(&net).unwrap() == Lv::One {
                v |= 1 << i;
            }
        }
        v
    }

    #[test]
    fn adder_adds() {
        let mut m = Module::new("t");
        {
            let mut b = Builder::new(&mut m);
            let a = b.input("a", 8).unwrap();
            let c = b.input("b", 8).unwrap();
            let (sum, _) = b.adder(&a, &c, Conn::Const0).unwrap();
            b.output("s", &sum).unwrap();
        }
        let mut sim = simulate(m);
        for (x, y) in [(3u64, 5u64), (200, 100), (255, 1), (0, 0)] {
            poke_word(&mut sim, "a", 8, x);
            poke_word(&mut sim, "b", 8, y);
            sim.run_for(10.0);
            assert_eq!(peek_word(&sim, "s", 8), (x + y) & 0xFF, "{x}+{y}");
        }
    }

    #[test]
    fn carry_select_adder_matches_ripple() {
        let mut m = Module::new("t");
        {
            let mut b = Builder::new(&mut m);
            let a = b.input("a", 12).unwrap();
            let c = b.input("b", 12).unwrap();
            let fast = b.carry_select_adder(&a, &c, 4).unwrap();
            b.output("s", &fast).unwrap();
        }
        let mut sim = simulate(m);
        for (x, y) in [(0xABCu64, 0x123u64), (0xFFF, 1), (0x800, 0x800), (17, 4000)] {
            poke_word(&mut sim, "a", 12, x);
            poke_word(&mut sim, "b", 12, y);
            sim.run_for(10.0);
            assert_eq!(peek_word(&sim, "s", 12), (x + y) & 0xFFF, "{x}+{y}");
        }
    }

    #[test]
    fn subtractor_subtracts() {
        let mut m = Module::new("t");
        {
            let mut b = Builder::new(&mut m);
            let a = b.input("a", 8).unwrap();
            let c = b.input("b", 8).unwrap();
            let d = b.subtractor(&a, &c).unwrap();
            b.output("s", &d).unwrap();
        }
        let mut sim = simulate(m);
        for (x, y) in [(10u64, 3u64), (3, 10), (0, 0), (255, 255)] {
            poke_word(&mut sim, "a", 8, x);
            poke_word(&mut sim, "b", 8, y);
            sim.run_for(10.0);
            assert_eq!(peek_word(&sim, "s", 8), x.wrapping_sub(y) & 0xFF, "{x}-{y}");
        }
    }

    #[test]
    fn rom_returns_programmed_words() {
        let table: Vec<u64> = (0..8).map(|i| (i * 37 + 5) & 0xFF).collect();
        let mut m = Module::new("t");
        {
            let mut b = Builder::new(&mut m);
            let addr = b.input("addr", 3).unwrap();
            let data = b.rom(&addr, &table, 8).unwrap();
            b.output("data", &data).unwrap();
        }
        let mut sim = simulate(m);
        for (i, &expect) in table.iter().enumerate() {
            poke_word(&mut sim, "addr", 3, i as u64);
            sim.run_for(10.0);
            assert_eq!(peek_word(&sim, "data", 8), expect, "addr {i}");
        }
    }

    #[test]
    fn decoder_one_hot() {
        let mut m = Module::new("t");
        {
            let mut b = Builder::new(&mut m);
            let sel = b.input("sel", 2).unwrap();
            let en = b.input("en", 1).unwrap();
            let outs = b.decoder(&sel, en.0[0]).unwrap();
            b.output("o", &outs).unwrap();
        }
        let mut sim = simulate(m);
        poke_word(&mut sim, "en", 1, 1);
        for k in 0..4u64 {
            poke_word(&mut sim, "sel", 2, k);
            sim.run_for(10.0);
            assert_eq!(peek_word(&sim, "o", 4), 1 << k, "sel {k}");
        }
        poke_word(&mut sim, "en", 1, 0);
        sim.run_for(10.0);
        assert_eq!(peek_word(&sim, "o", 4), 0);
    }

    #[test]
    fn register_en_holds_without_we() {
        let mut m = Module::new("t");
        {
            let mut b = Builder::new(&mut m);
            let d = b.input("d", 4).unwrap();
            let we = b.input("we", 1).unwrap();
            let clk = b.input("clk", 1).unwrap();
            let q = b.register_en("r", &d, we.0[0], clk.0[0]).unwrap();
            b.output("q", &q).unwrap();
        }
        let mut sim = simulate(m);
        let tick = |sim: &mut Simulator| {
            sim.poke("clk", Lv::One).unwrap();
            sim.run_for(5.0);
            sim.poke("clk", Lv::Zero).unwrap();
            sim.run_for(5.0);
        };
        poke_word(&mut sim, "d", 4, 0b1010);
        poke_word(&mut sim, "we", 1, 1);
        sim.run_for(2.0);
        tick(&mut sim);
        assert_eq!(peek_word(&sim, "q", 4), 0b1010);
        poke_word(&mut sim, "d", 4, 0b0101);
        poke_word(&mut sim, "we", 1, 0);
        sim.run_for(2.0);
        tick(&mut sim);
        assert_eq!(peek_word(&sim, "q", 4), 0b1010, "held without we");
        poke_word(&mut sim, "we", 1, 1);
        sim.run_for(2.0);
        tick(&mut sim);
        assert_eq!(peek_word(&sim, "q", 4), 0b0101);
    }

    #[test]
    fn equality_and_mux_tree() {
        let mut m = Module::new("t");
        {
            let mut b = Builder::new(&mut m);
            let a = b.input("a", 4).unwrap();
            let c = b.input("b", 4).unwrap();
            let eq = b.equal(&a, &c).unwrap();
            b.output("eq", &Word::bit(eq)).unwrap();
            let sel = b.input("sel", 2).unwrap();
            let opts: Vec<Word> = (0..4)
                .map(|k| {
                    let w = b.wire(&format!("k{k}"), 1).unwrap();
                    // drive each from eq through buffers/inverters to vary
                    let cell = format!("k{k}_drv");
                    let kind = if k % 2 == 0 { "BUFX1" } else { "INVX1" };
                    b.module()
                        .add_cell(cell, kind, &[("A", Conn::Net(eq)), ("Z", Conn::Net(w.0[0]))])
                        .unwrap();
                    w
                })
                .collect();
            let o = b.mux_tree(&sel, &opts).unwrap();
            b.output("mo", &o).unwrap();
        }
        let mut sim = simulate(m);
        poke_word(&mut sim, "a", 4, 9);
        poke_word(&mut sim, "b", 4, 9);
        poke_word(&mut sim, "sel", 2, 0);
        sim.run_for(10.0);
        assert_eq!(peek_word(&sim, "eq", 1), 1);
        assert_eq!(peek_word(&sim, "mo", 1), 1);
        poke_word(&mut sim, "sel", 2, 1);
        sim.run_for(10.0);
        assert_eq!(peek_word(&sim, "mo", 1), 0, "inverted leaf");
        poke_word(&mut sim, "b", 4, 5);
        sim.run_for(10.0);
        assert_eq!(peek_word(&sim, "eq", 1), 0);
    }
}
